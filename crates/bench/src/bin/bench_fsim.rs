//! Measures the parallel fault-simulation engine and writes
//! `BENCH_fsim.json` at the repo root.
//!
//! For each module the binary times:
//!
//! - the serial reference engine (`fault_simulate_reference`: no fanout-cone
//!   pruning, single thread), and
//! - the production engine (`fault_simulate`) at 1, 2, 4 and 8 threads,
//!   capped at the host core count (oversubscribed configurations resolve
//!   to the same clamped worker count and would only duplicate the
//!   `engine/host_cores` row — they are skipped and listed in the JSON),
//!
//! in non-drop mode (load-stable: every run simulates every fault against
//! every pattern). It reports patterns/second, the speedup of each engine
//! configuration over `engine` at `threads = 1`, and the speedup over the
//! unpruned reference. The host core count is recorded so single-core
//! results (where thread scaling cannot show) are interpretable. A final
//! guard times the single-thread engine with a live [`Recorder`] attached
//! against the default no-op handle, bounding the observability overhead.
//!
//! Usage: `cargo run --release -p warpstl-bench --bin bench_fsim`
//! (or via `scripts/bench_fsim.sh`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use warpstl_analyze::Scoap;
use warpstl_bench::{compact_group, Scale};
use warpstl_campaign::{run_campaign, CampaignConfig, CampaignSpec};
use warpstl_core::{Compactor, StageTimings};
use warpstl_fault::{
    fault_simulate, fault_simulate_guided, fault_simulate_observed, fault_simulate_reference,
    FaultList, FaultSimConfig, FaultUniverse, SimBackend, SimGuide,
};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Netlist, PatternSeq};
use warpstl_obs::Recorder;
use warpstl_programs::generators::{generate_cntrl, generate_imm, generate_mem};
use warpstl_store::{atomic_write, Store};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn pseudorandom_patterns(width: usize, count: usize, mut seed: u64) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for cc in 0..count as u64 {
        let bits: Vec<bool> = (0..width)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & 1 == 1
            })
            .collect();
        p.push_bits(cc, &bits);
    }
    p
}

// The legacy engine rows pin the event backend so `engine/1 vs reference`
// keeps isolating fanout-cone pruning; the levelized kernel is measured
// separately in the `kernel` block.
fn non_drop(threads: usize) -> FaultSimConfig {
    FaultSimConfig {
        drop_detected: false,
        early_exit: false,
        threads,
        backend: SimBackend::Event,
    }
}

/// Best-of-`reps` wall time for one engine invocation, in seconds.
fn time_best<F: FnMut(&mut FaultList)>(universe: &FaultUniverse, reps: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut list = FaultList::new(universe);
        let start = Instant::now();
        run(&mut list);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct ModuleResult {
    name: String,
    patterns: usize,
    faults: usize,
    reference_s: f64,
    engine_s: Vec<(usize, f64)>,
}

fn measure(
    name: &str,
    netlist: &Netlist,
    patterns: usize,
    reps: usize,
    thread_counts: &[usize],
) -> ModuleResult {
    let pats = pseudorandom_patterns(
        netlist.inputs().width(),
        patterns,
        0xb5eed ^ patterns as u64,
    );
    let universe = FaultUniverse::enumerate(netlist);

    eprintln!(
        "[bench_fsim] {name}: {} collapsed faults, {patterns} patterns",
        { universe.collapsed_len() }
    );
    let reference_s = time_best(&universe, reps, |list| {
        fault_simulate_reference(netlist, &pats, list, &non_drop(1));
    });
    eprintln!("[bench_fsim]   reference      {reference_s:.4}s");

    let engine_s: Vec<(usize, f64)> = thread_counts
        .iter()
        .map(|&t| {
            let s = time_best(&universe, reps, |list| {
                fault_simulate(netlist, &pats, list, &non_drop(t));
            });
            eprintln!("[bench_fsim]   engine t={t}     {s:.4}s");
            (t, s)
        })
        .collect();

    ModuleResult {
        name: name.to_string(),
        patterns,
        faults: universe.collapsed_len(),
        reference_s,
        engine_s,
    }
}

struct DominanceResult {
    name: String,
    patterns: usize,
    collapsed: usize,
    direct: usize,
    dominated: usize,
    analysis_s: f64,
    baseline_s: f64,
    guided_s: f64,
    coverage: f64,
}

/// Times the drop-mode dominance+ordering run against the equivalence-only
/// baseline (single thread, so the difference is pure work reduction) and
/// asserts the two report identical coverage over the full universe.
fn measure_dominance(
    name: &str,
    netlist: &Netlist,
    patterns: usize,
    reps: usize,
) -> DominanceResult {
    let pats = pseudorandom_patterns(netlist.inputs().width(), patterns, 0xd0d0 ^ patterns as u64);
    let universe = FaultUniverse::enumerate(netlist);

    // One-time per-module analysis cost (shared by every PTP of an STL).
    let start = Instant::now();
    let dominance = universe.dominance(netlist);
    let keys = Scoap::compute(netlist).observability_keys();
    let levels = netlist.levelize();
    let analysis_s = start.elapsed().as_secs_f64();
    let guide = SimGuide {
        dominance: Some(&dominance),
        order_keys: Some(&keys),
        levels: Some(&levels),
        ..SimGuide::default()
    };
    let cfg = FaultSimConfig {
        threads: 1,
        ..FaultSimConfig::default()
    };

    eprintln!(
        "[bench_fsim] {name}: {} collapsed classes, {} dominated, {patterns} patterns (drop mode)",
        universe.collapsed_len(),
        dominance.removed().len()
    );
    let baseline_s = time_best(&universe, reps, |list| {
        fault_simulate(netlist, &pats, list, &cfg);
    });
    eprintln!("[bench_fsim]   equivalence-only {baseline_s:.4}s");
    let guided_s = time_best(&universe, reps, |list| {
        fault_simulate_guided(netlist, &pats, list, &cfg, None, &guide);
    });
    eprintln!(
        "[bench_fsim]   dominance+order  {guided_s:.4}s ({:.2}x)",
        baseline_s / guided_s
    );

    // Coverage identity: the reduced run must report exactly the baseline's
    // coverage over the full universe.
    let mut base_list = FaultList::new(&universe);
    fault_simulate(netlist, &pats, &mut base_list, &cfg);
    let mut guided_list = FaultList::new(&universe);
    fault_simulate_guided(netlist, &pats, &mut guided_list, &cfg, None, &guide);
    assert_eq!(
        guided_list.coverage(),
        base_list.coverage(),
        "{name}: dominance+ordering changed the reported coverage"
    );

    DominanceResult {
        name: name.to_string(),
        patterns,
        collapsed: universe.collapsed_len(),
        direct: dominance.direct().len(),
        dominated: dominance.removed().len(),
        analysis_s,
        baseline_s,
        guided_s,
        coverage: base_list.coverage(),
    }
}

struct ImplicationResult {
    name: String,
    patterns: usize,
    collapsed: usize,
    pruned: usize,
    implication_s: f64,
    /// `(backend label, unpruned_s, pruned_s)` per engine backend.
    backends: Vec<(&'static str, f64, f64)>,
}

/// Times the production drop-mode engine with the statically
/// proven-untestable classes left in the universe against the same run
/// with them pruned out (single thread, both backends), gated on
/// bit-identity of the detected-fault set: pruned faults are provably
/// undetectable, so the fault lists must agree entry for entry.
fn measure_implications(
    name: &str,
    kind: ModuleKind,
    patterns: usize,
    reps: usize,
) -> ImplicationResult {
    let netlist = kind.build();
    let pats = pseudorandom_patterns(netlist.inputs().width(), patterns, 0x1a2b ^ patterns as u64);
    let universe = FaultUniverse::enumerate(&netlist);

    // One-time static-analysis cost (the implication graph and the proofs;
    // the class mapping rides along in the module context).
    let start = Instant::now();
    let imp = warpstl_analyze::Implications::compute(&netlist);
    let _proofs = warpstl_analyze::Untestability::compute(&netlist, &imp);
    let implication_s = start.elapsed().as_secs_f64();
    let ctx = Compactor::default().context_for(kind);
    let bitmap = ctx.untestable_bitmap().to_vec();
    let pruned = bitmap.iter().filter(|&&b| b).count();

    eprintln!(
        "[bench_fsim] {name}: {} collapsed classes, {pruned} statically pruned, {patterns} patterns (drop mode)",
        universe.collapsed_len()
    );
    let mut backends = Vec::new();
    for (label, backend) in [("event", SimBackend::Event), ("kernel", SimBackend::Kernel)] {
        let cfg = FaultSimConfig {
            threads: 1,
            backend,
            ..FaultSimConfig::default()
        };
        let off_guide = SimGuide::default();
        let on_guide = SimGuide {
            untestable: Some(&bitmap),
            ..SimGuide::default()
        };

        // Detected-set identity before any timing is recorded.
        let mut off_list = FaultList::new(&universe);
        fault_simulate_guided(&netlist, &pats, &mut off_list, &cfg, None, &off_guide);
        let mut on_list = FaultList::new(&universe);
        fault_simulate_guided(&netlist, &pats, &mut on_list, &cfg, None, &on_guide);
        assert_eq!(
            off_list.to_report_text(),
            on_list.to_report_text(),
            "{name}/{label}: pruning changed the detected-fault set"
        );

        let off_s = time_best(&universe, reps, |list| {
            fault_simulate_guided(&netlist, &pats, list, &cfg, None, &off_guide);
        });
        let on_s = time_best(&universe, reps, |list| {
            fault_simulate_guided(&netlist, &pats, list, &cfg, None, &on_guide);
        });
        eprintln!(
            "[bench_fsim]   {label:<6} unpruned {off_s:.4}s / pruned {on_s:.4}s ({:.2}x)",
            off_s / on_s
        );
        backends.push((label, off_s, on_s));
    }

    ImplicationResult {
        name: name.to_string(),
        patterns,
        collapsed: universe.collapsed_len(),
        pruned,
        implication_s,
        backends,
    }
}

struct KernelResult {
    name: String,
    patterns: usize,
    faults: usize,
    event_s: f64,
    kernel64_s: f64,
    kernel256_s: f64,
}

/// Times the event path against the levelized kernel at both block widths
/// (single thread, drop mode — the production default — and 512 patterns so
/// the 256-bit path sees full blocks), gated on bit-identity: timings are
/// only recorded after both kernel widths reproduce the event path's report
/// and fault list exactly.
fn measure_kernel(name: &str, netlist: &Netlist, patterns: usize, reps: usize) -> KernelResult {
    let pats = pseudorandom_patterns(netlist.inputs().width(), patterns, 0x5e7e ^ patterns as u64);
    let universe = FaultUniverse::enumerate(netlist);
    let cfg = |backend| FaultSimConfig {
        threads: 1,
        backend,
        ..FaultSimConfig::default()
    };

    let mut event_list = FaultList::new(&universe);
    let event_report = fault_simulate(netlist, &pats, &mut event_list, &cfg(SimBackend::Event));
    for backend in [SimBackend::Kernel64, SimBackend::Kernel] {
        let mut list = FaultList::new(&universe);
        let report = fault_simulate(netlist, &pats, &mut list, &cfg(backend));
        assert_eq!(
            report, event_report,
            "{name}: backend {backend} diverged from the event path report"
        );
        assert_eq!(
            list.to_report_text(),
            event_list.to_report_text(),
            "{name}: backend {backend} diverged from the event path fault list"
        );
    }

    eprintln!(
        "[bench_fsim] {name}: kernel vs event, {} collapsed faults, {patterns} patterns (t=1)",
        universe.collapsed_len()
    );
    let event_s = time_best(&universe, reps, |list| {
        fault_simulate(netlist, &pats, list, &cfg(SimBackend::Event));
    });
    eprintln!("[bench_fsim]   event          {event_s:.4}s");
    let kernel64_s = time_best(&universe, reps, |list| {
        fault_simulate(netlist, &pats, list, &cfg(SimBackend::Kernel64));
    });
    eprintln!(
        "[bench_fsim]   kernel w=64    {kernel64_s:.4}s ({:.2}x)",
        event_s / kernel64_s
    );
    let kernel256_s = time_best(&universe, reps, |list| {
        fault_simulate(netlist, &pats, list, &cfg(SimBackend::Kernel));
    });
    eprintln!(
        "[bench_fsim]   kernel w=256   {kernel256_s:.4}s ({:.2}x)",
        event_s / kernel256_s
    );

    KernelResult {
        name: name.to_string(),
        patterns,
        faults: universe.collapsed_len(),
        event_s,
        kernel64_s,
        kernel256_s,
    }
}

/// End-to-end compaction of the DU group (the `compact_stl` per-module
/// flow) at bench scale: wall time plus the merged per-stage split, so the
/// fault-sim share of the pipeline is visible.
fn measure_compaction(threads: usize) -> (f64, StageTimings) {
    let scale = Scale::new(128);
    let du = vec![
        generate_imm(&scale.imm()),
        generate_mem(&scale.mem()),
        generate_cntrl(&scale.cntrl()),
    ];
    let compactor = Compactor {
        fsim_config: FaultSimConfig {
            threads,
            ..FaultSimConfig::default()
        },
        ..Compactor::default()
    };
    let start = Instant::now();
    let group = compact_group(&du, ModuleKind::DecoderUnit, &compactor);
    let wall = start.elapsed().as_secs_f64();
    let stages = group.rows.iter().fold(StageTimings::default(), |acc, r| {
        acc.merged(&r.stage_timings)
    });
    (wall, stages)
}

struct CacheResult {
    cold_s: f64,
    warm_s: f64,
    identical: bool,
    warm_hits: u64,
    warm_misses: u64,
    cold_writes: u64,
}

impl CacheResult {
    fn speedup(&self) -> f64 {
        self.cold_s / self.warm_s
    }
}

/// Cold-vs-warm compaction of the DU group against an on-disk artifact
/// store: the cold run populates the cache, the warm run must replay it —
/// reproducing every `CompactionReport` byte-for-byte while skipping the
/// fault-simulation work entirely.
fn measure_cache() -> CacheResult {
    let dir = std::env::temp_dir().join(format!("warpstl-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Each run opens its own store handle so the session counters are
    // per-run, but both point at the same directory.
    let run = || {
        let store = Arc::new(Store::open(&dir).expect("open bench cache dir"));
        let scale = Scale::new(128);
        let du = vec![
            generate_imm(&scale.imm()),
            generate_mem(&scale.mem()),
            generate_cntrl(&scale.cntrl()),
        ];
        let compactor = Compactor {
            store: Some(store.clone()),
            ..Compactor::default()
        };
        let start = Instant::now();
        let group = compact_group(&du, ModuleKind::DecoderUnit, &compactor);
        let wall = start.elapsed().as_secs_f64();
        let json: String = group
            .rows
            .iter()
            .map(warpstl_core::CompactionReport::to_json)
            .collect();
        (wall, json, store.session())
    };

    let (cold_s, cold_json, cold_stats) = run();
    eprintln!(
        "[bench_fsim]   cold {cold_s:.4}s ({} write(s), {} miss(es))",
        cold_stats.writes, cold_stats.misses
    );
    let (warm_s, warm_json, warm_stats) = run();
    eprintln!(
        "[bench_fsim]   warm {warm_s:.4}s ({} hit(s), {} miss(es), {:.2}x)",
        warm_stats.hits,
        warm_stats.misses,
        cold_s / warm_s
    );

    let identical = cold_json == warm_json;
    assert!(identical, "warm cache rerun diverged from the cold reports");
    if cold_s / warm_s < 5.0 {
        eprintln!(
            "[bench_fsim]   WARNING: warm speedup {:.2}x below the 5x target",
            cold_s / warm_s
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    CacheResult {
        cold_s,
        warm_s,
        identical,
        warm_hits: warm_stats.hits,
        warm_misses: warm_stats.misses,
        cold_writes: cold_stats.writes,
    }
}

struct CampaignResult {
    cells: usize,
    jobs: usize,
    cold_s: f64,
    warm_s: f64,
    identical: bool,
    warm_hits: u64,
    cold_writes: u64,
}

/// Cold-vs-warm run of a small campaign matrix (2 modules × 2 lane shapes
/// × both fault models) against one on-disk artifact store: the cold run
/// populates the store cell by cell, the warm rerun must replay it while
/// reproducing the campaign report byte-for-byte.
fn measure_campaign() -> CampaignResult {
    let dir = std::env::temp_dir().join(format!("warpstl-bench-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = CampaignSpec::parse(
        r#"{
            "name": "bench",
            "modules": ["decoder_unit", "sfu"],
            "lanes": [8, 16],
            "fault_models": ["stuck-at", "bridging"],
            "sb_count": 3,
            "bridge_pairs": 32
        }"#,
    )
    .expect("bench campaign spec");
    let jobs = 2usize;

    // Each run opens its own store handle so the session counters are
    // per-run, but both point at the same directory.
    let run = || {
        let store = Arc::new(Store::open(&dir).expect("open bench campaign cache dir"));
        let start = Instant::now();
        let report = run_campaign(
            &spec,
            &CampaignConfig {
                jobs,
                store: Some(store.clone()),
                ..CampaignConfig::default()
            },
        );
        let wall = start.elapsed().as_secs_f64();
        (wall, report, store.session())
    };

    let (cold_s, cold_report, cold_stats) = run();
    assert_eq!(
        cold_report.ok_count(),
        cold_report.cells.len(),
        "a campaign cell failed in the bench matrix"
    );
    eprintln!(
        "[bench_fsim]   cold {cold_s:.4}s ({} cell(s), {} write(s))",
        cold_report.cells.len(),
        cold_stats.writes
    );
    let (warm_s, warm_report, warm_stats) = run();
    eprintln!(
        "[bench_fsim]   warm {warm_s:.4}s ({} hit(s), {:.2}x)",
        warm_stats.hits,
        cold_s / warm_s
    );

    let identical = cold_report.to_json() == warm_report.to_json();
    assert!(
        identical,
        "warm campaign rerun diverged from the cold report"
    );
    let _ = std::fs::remove_dir_all(&dir);

    CampaignResult {
        cells: cold_report.cells.len(),
        jobs,
        cold_s,
        warm_s,
        identical,
        warm_hits: warm_stats.hits,
        cold_writes: cold_stats.writes,
    }
}

/// Times the single-thread engine with a no-op `Obs` handle vs a live
/// recorder on the DU module: the guard for the "zero cost when disabled"
/// claim (and an upper bound on the enabled overhead).
fn measure_obs_overhead(reps: usize) -> (f64, f64) {
    let netlist = ModuleKind::DecoderUnit.build();
    let pats = pseudorandom_patterns(netlist.inputs().width(), 128, 0xb5eed ^ 128);
    let universe = FaultUniverse::enumerate(&netlist);
    let noop_s = time_best(&universe, reps, |list| {
        fault_simulate_observed(&netlist, &pats, list, &non_drop(1), None);
    });
    let recorder = Recorder::new();
    let recorder_s = time_best(&universe, reps, |list| {
        fault_simulate_observed(&netlist, &pats, list, &non_drop(1), Some(&recorder));
    });
    (noop_s, recorder_s)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Thread counts beyond the host cores resolve to the same clamped
    // worker count (see `FaultSimConfig::resolved_threads`), so sweeping
    // them would just re-measure `engine/cores` under a different label.
    let swept: Vec<usize> = THREAD_COUNTS
        .iter()
        .copied()
        .filter(|&t| t <= cores)
        .collect();
    let skipped: Vec<usize> = THREAD_COUNTS
        .iter()
        .copied()
        .filter(|&t| t > cores)
        .collect();
    if !skipped.is_empty() {
        eprintln!("[bench_fsim] host has {cores} core(s); skipping oversubscribed thread counts {skipped:?}");
    }
    let modules = [
        ("decoder_unit", ModuleKind::DecoderUnit, 256usize, 5usize),
        ("sfu", ModuleKind::Sfu, 128, 5),
    ];

    let results: Vec<ModuleResult> = modules
        .iter()
        .map(|&(name, kind, patterns, reps)| measure(name, &kind.build(), patterns, reps, &swept))
        .collect();

    eprintln!("[bench_fsim] measuring levelized kernel vs event path (non-drop, t=1)");
    let kernel_results: Vec<KernelResult> = ModuleKind::ALL
        .iter()
        .map(|kind| measure_kernel(kind.name(), &kind.build(), 512, 3))
        .collect();

    eprintln!("[bench_fsim] measuring dominance+ordering vs equivalence-only (drop mode, t=1)");
    let dominance_results: Vec<DominanceResult> = ModuleKind::ALL
        .iter()
        .map(|kind| {
            let patterns = match kind {
                ModuleKind::DecoderUnit => 2048,
                _ => 512,
            };
            measure_dominance(kind.name(), &kind.build(), patterns, 5)
        })
        .collect();

    eprintln!("[bench_fsim] measuring static universe pruning (drop mode, t=1, both backends)");
    let implication_results: Vec<ImplicationResult> = ModuleKind::ALL
        .iter()
        .map(|&kind| measure_implications(kind.name(), kind, 512, 3))
        .collect();

    eprintln!("[bench_fsim] measuring observability overhead (engine t=1, DU)");
    let (obs_noop_s, obs_recorder_s) = measure_obs_overhead(5);
    eprintln!(
        "[bench_fsim]   obs off {obs_noop_s:.4}s / on {obs_recorder_s:.4}s ({:+.2} %)",
        100.0 * (obs_recorder_s / obs_noop_s - 1.0)
    );

    eprintln!("[bench_fsim] compacting the DU group end-to-end (bench scale)");
    let (compact_wall_s, compact_stages) = measure_compaction(0);
    eprintln!("[bench_fsim]   compact du_group {compact_wall_s:.4}s ({compact_stages})");

    eprintln!("[bench_fsim] cold vs warm artifact cache (DU group)");
    let cache = measure_cache();

    eprintln!("[bench_fsim] cold vs warm campaign matrix (2 modules x 2 shapes x 2 models)");
    let campaign = measure_campaign();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"fsim\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let skipped_list = skipped
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(json, "  \"skipped_thread_counts\": [{skipped_list}],");
    // With every multi-thread configuration skipped the sweep degenerates
    // to t=1 and says nothing about batch-level threading; flag it so the
    // JSON is not misread as "threading verified" on a single-core host.
    let threading_untested = swept == [1];
    if threading_untested {
        eprintln!(
            "[bench_fsim] WARNING: host has 1 core; all multi-thread configurations were skipped, thread scaling is untested"
        );
    }
    let _ = writeln!(json, "  \"threading_untested\": {threading_untested},");
    let skipped_note = if skipped.is_empty() {
        String::new()
    } else {
        format!(
            "; thread counts {skipped:?} exceed host_cores and were skipped (they resolve to {cores} worker(s) anyway)"
        )
    };
    let _ = writeln!(
        json,
        "  \"note\": \"non-drop mode; best of N reps; engine/1 vs reference isolates fanout-cone pruning, engine/N vs engine/1 isolates batch-level threading (meaningful only when host_cores > 1){skipped_note}\","
    );
    json.push_str("  \"modules\": [\n");
    for (mi, m) in results.iter().enumerate() {
        let t1 = m
            .engine_s
            .iter()
            .find(|&&(t, _)| t == 1)
            .map_or(f64::NAN, |&(_, s)| s);
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"module\": \"{}\",", m.name);
        let _ = writeln!(json, "      \"patterns\": {},", m.patterns);
        let _ = writeln!(json, "      \"collapsed_faults\": {},", m.faults);
        let _ = writeln!(json, "      \"reference_s\": {:.6},", m.reference_s);
        let _ = writeln!(
            json,
            "      \"reference_patterns_per_s\": {:.1},",
            m.patterns as f64 / m.reference_s
        );
        json.push_str("      \"engine\": [\n");
        for (ei, &(t, s)) in m.engine_s.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"threads\": {t}, \"seconds\": {s:.6}, \"patterns_per_s\": {:.1}, \"speedup_vs_threads1\": {:.3}, \"speedup_vs_reference\": {:.3}}}",
                m.patterns as f64 / s,
                t1 / s,
                m.reference_s / s
            );
            json.push_str(if ei + 1 < m.engine_s.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("      ]\n");
        json.push_str(if mi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"kernel\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"levelized SoA batch kernel vs the event path, drop mode (the production default), single thread, best of N reps; kernel64/kernel256 are the 64-bit remainder and 256-bit wide block paths; bit-identity of report and fault list against the event path is asserted before any timing is recorded\","
    );
    json.push_str("    \"modules\": [\n");
    for (ki, k) in kernel_results.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"module\": \"{}\", \"patterns\": {}, \"collapsed_faults\": {}, \"event_s\": {:.6}, \"kernel64_s\": {:.6}, \"kernel256_s\": {:.6}, \"speedup_kernel64\": {:.3}, \"speedup_kernel256\": {:.3}}}",
            k.name,
            k.patterns,
            k.faults,
            k.event_s,
            k.kernel64_s,
            k.kernel256_s,
            k.event_s / k.kernel64_s,
            k.event_s / k.kernel256_s
        );
        json.push_str(if ki + 1 < kernel_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"dominance\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"drop mode, single thread, best of N reps: equivalence-only target list vs dominance-collapsed list with SCOAP hardest-first group ordering and segmented re-packing of undetected faults; coverage over the full universe is asserted identical before recording; analysis_s is the one-time per-module SCOAP+dominance build shared across an STL\","
    );
    json.push_str("    \"modules\": [\n");
    for (di, d) in dominance_results.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"module\": \"{}\", \"patterns\": {}, \"collapsed_classes\": {}, \"direct\": {}, \"dominated\": {}, \"analysis_s\": {:.6}, \"equivalence_only_s\": {:.6}, \"dominance_ordering_s\": {:.6}, \"speedup\": {:.3}, \"coverage\": {:.6}}}",
            d.name,
            d.patterns,
            d.collapsed,
            d.direct,
            d.dominated,
            d.analysis_s,
            d.baseline_s,
            d.guided_s,
            d.baseline_s / d.guided_s,
            d.coverage
        );
        json.push_str(if di + 1 < dominance_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"implications\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"drop mode, single thread, best of N reps: the full collapsed universe vs the same run with statically proven-untestable classes pruned, per engine backend; the detected-fault set is asserted bit-identical before recording (pruned faults are provably undetectable); implication_s is the one-time per-module implication-graph + proof build\","
    );
    json.push_str("    \"modules\": [\n");
    for (ii, r) in implication_results.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"module\": \"{}\", \"patterns\": {}, \"collapsed_classes\": {}, \"pruned_untestable\": {}, \"universe_after\": {}, \"implication_s\": {:.6}",
            r.name,
            r.patterns,
            r.collapsed,
            r.pruned,
            r.collapsed - r.pruned,
            r.implication_s
        );
        for &(label, off_s, on_s) in &r.backends {
            let _ = write!(
                json,
                ", \"{label}_unpruned_s\": {off_s:.6}, \"{label}_pruned_s\": {on_s:.6}, \"{label}_speedup\": {:.3}",
                off_s / on_s
            );
        }
        json.push('}');
        json.push_str(if ii + 1 < implication_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"obs_overhead\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"engine t=1 on the DU, 128 patterns: Obs=None (the default everywhere observability is not requested) vs a live Recorder; None must be within noise of the pre-instrumentation engine\","
    );
    let _ = writeln!(json, "    \"noop_s\": {obs_noop_s:.6},");
    let _ = writeln!(json, "    \"recorder_s\": {obs_recorder_s:.6},");
    let _ = writeln!(
        json,
        "    \"recorder_overhead_pct\": {:.2}",
        100.0 * (obs_recorder_s / obs_noop_s - 1.0)
    );
    json.push_str("  },\n");
    json.push_str("  \"compact_du_group\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"end-to-end IMM+MEM+CNTRL compaction (the compact_stl per-module flow) at 1/128 scale with the parallel engine; stage split from CompactionReport::stage_timings\","
    );
    let _ = writeln!(json, "    \"wall_s\": {compact_wall_s:.6},");
    let _ = writeln!(
        json,
        "    \"analyze_s\": {:.6},",
        compact_stages.analyze.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"trace_s\": {:.6},",
        compact_stages.trace.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"fsim_s\": {:.6},",
        compact_stages.fsim.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"label_s\": {:.6},",
        compact_stages.label.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"reduce_s\": {:.6},",
        compact_stages.reduce.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"verify_s\": {:.6},",
        compact_stages.verify.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"eval_s\": {:.6}",
        compact_stages.eval.as_secs_f64()
    );
    json.push_str("  },\n");
    json.push_str("  \"cache\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"the DU-group compaction above, run twice against one on-disk artifact store: the cold run computes and writes analyze reports and per-fault detection stamps, the warm run replays them; report_identical asserts the warm CompactionReports match the cold ones byte-for-byte\","
    );
    let _ = writeln!(json, "    \"cold_s\": {:.6},", cache.cold_s);
    let _ = writeln!(json, "    \"warm_s\": {:.6},", cache.warm_s);
    let _ = writeln!(json, "    \"speedup\": {:.3},", cache.speedup());
    let _ = writeln!(json, "    \"report_identical\": {},", cache.identical);
    let _ = writeln!(json, "    \"cold_writes\": {},", cache.cold_writes);
    let _ = writeln!(json, "    \"warm_hits\": {},", cache.warm_hits);
    let _ = writeln!(json, "    \"warm_misses\": {}", cache.warm_misses);
    json.push_str("  },\n");
    json.push_str("  \"campaign\": {\n");
    let _ = writeln!(
        json,
        "    \"note\": \"an 8-cell campaign matrix (decoder_unit+sfu x 8/16 lanes x stuck-at/bridging) run cold then warm against one artifact store with 2 workers; report_identical asserts the warm campaign report matches the cold one byte-for-byte\","
    );
    let _ = writeln!(json, "    \"cells\": {},", campaign.cells);
    let _ = writeln!(json, "    \"jobs\": {},", campaign.jobs);
    let _ = writeln!(json, "    \"cold_s\": {:.6},", campaign.cold_s);
    let _ = writeln!(json, "    \"warm_s\": {:.6},", campaign.warm_s);
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3},",
        campaign.cold_s / campaign.warm_s
    );
    let _ = writeln!(json, "    \"report_identical\": {},", campaign.identical);
    let _ = writeln!(json, "    \"cold_writes\": {},", campaign.cold_writes);
    let _ = writeln!(json, "    \"warm_hits\": {}", campaign.warm_hits);
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fsim.json");
    atomic_write(path, json.as_bytes()).expect("write BENCH_fsim.json");
    println!("{json}");
    eprintln!("[bench_fsim] wrote {path}");
}
