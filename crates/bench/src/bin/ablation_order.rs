//! Ablation B — pattern order in the stage-3 fault simulation. The paper's
//! SFU_IMM results "were obtained applying the test patterns in reverse
//! order during the fault simulation": with first-detection dropping, the
//! order decides which instructions end up essential. Compacts SFU_IMM both
//! ways and reports the difference.

use warpstl_bench::{timed, Scale};
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::generate_sfu_imm;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let ptp = generate_sfu_imm(&scale.sfu_imm());

    let forward = timed("forward order", || {
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::Sfu);
        compactor.compact(&ptp, &mut ctx).expect("SFU_IMM").report
    });
    let reverse = timed("reverse order", || {
        let compactor = Compactor {
            reverse_patterns: true,
            ..Compactor::default()
        };
        let mut ctx = compactor.context_for(ModuleKind::Sfu);
        compactor.compact(&ptp, &mut ctx).expect("SFU_IMM").report
    });

    println!("## Ablation: fault-simulation pattern order (SFU_IMM)");
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>8}",
        "order", "removed", "instr", "size -%", "ΔFC"
    );
    for (name, r) in [("forward", &forward), ("reverse", &reverse)] {
        println!(
            "{:<10} {:>9} {:>9} {:>8.2} {:>+8.2}",
            name,
            r.sbs_removed,
            r.compacted_size,
            r.size_reduction_pct(),
            r.fc_diff_pct()
        );
    }
    println!(
        "order changes which SBs survive: {} vs {} removed",
        forward.sbs_removed, reverse.sbs_removed
    );
}
