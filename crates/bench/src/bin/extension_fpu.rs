//! Extension experiment: apply the compaction method to the FP32 units —
//! the remaining functional units of the FlexGripPlus SM, not covered by
//! the paper's evaluated STL. Demonstrates that the method generalizes to
//! a fourth module unchanged (the paper's future-work direction of "more
//! elaborated … test programs").

use warpstl_bench::{timed, Scale};
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::{generate_fpu, FpuConfig};

fn main() {
    let scale = Scale::from_env();
    let sb_count = (2048 / scale.divisor).max(8);
    eprintln!("[FPU with {sb_count} SBs]");
    let ptp = generate_fpu(&FpuConfig {
        sb_count,
        ..FpuConfig::default()
    });

    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::Fp32);
    eprintln!(
        "[fp32 module: {} faults across {} instances]",
        ctx.total_faults(),
        ctx.instances()
    );
    let out = timed("compact FPU", || {
        compactor.compact(&ptp, &mut ctx).expect("FPU runs")
    });
    let r = &out.report;

    println!("## Extension: FP32-unit PTP compaction");
    println!(
        "{:<8} {:>8} {:>8} {:>12} {:>8} {:>8}",
        "PTP", "instr", "(%)", "ccs", "(%)", "ΔFC"
    );
    println!(
        "{:<8} {:>8} {:>8.2} {:>12} {:>8.2} {:>+8.2}",
        r.name,
        r.compacted_size,
        -r.size_reduction_pct(),
        r.compacted_duration,
        -r.duration_reduction_pct(),
        r.fc_diff_pct()
    );
    println!(
        "FC {:.2}% -> {:.2}%, {} of {} SBs removed, 1 logic + 1 fault simulation",
        r.fc_before * 100.0,
        r.fc_after * 100.0,
        r.sbs_removed,
        r.sbs_total
    );
}
