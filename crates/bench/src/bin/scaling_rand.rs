//! Scaling study: the paper's extreme compaction ratios (RAND −97.79 %)
//! are a *saturation* effect — once the random-testable faults of the SP
//! core are exhausted, every further Small Block is unessential. At small
//! scales the fault list is still filling up, so the removal percentage is
//! scale-dependent. This binary compacts RAND at a range of sizes against
//! a single SP-core instance and prints the removal ratio climbing toward
//! the paper's value as the program grows.

use warpstl_core::{label_instructions, reduce_ptp, Compactor};
use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::{generate_rand_sp, RandConfig};

fn main() {
    let netlist = ModuleKind::SpCore.build();
    let universe = FaultUniverse::enumerate(&netlist);
    let compactor = Compactor::default();

    println!("## RAND compaction vs. program size (single SP instance)");
    println!("paper, full scale (3 437 SBs, all instances): -97.79 % size");
    println!(
        "{:>8} {:>9} {:>10} {:>10} {:>9} {:>8}",
        "SBs", "instr", "essential", "removedSB", "size -%", "FC %"
    );
    // Divisors below 16 move the ratio further toward the paper's figure
    // but cost tens of minutes on one core; extend the list when you have
    // the budget.
    for divisor in [256usize, 128, 64, 32, 16] {
        let sb_count = (3437 / divisor).max(4);
        let ptp = generate_rand_sp(&RandConfig {
            sb_count,
            ..RandConfig::default()
        });
        let run = compactor.trace(&ptp).expect("runs");
        let mut list = FaultList::new(&universe);
        let report = fault_simulate(
            &netlist,
            &run.patterns.sp[0],
            &mut list,
            &FaultSimConfig::default(),
        );
        let labels = label_instructions(ptp.program.len(), &run.trace, &report);
        let reduction = reduce_ptp(&ptp, &labels);
        let removed_frac = reduction.removed_instructions as f64 / ptp.size() as f64 * 100.0;
        println!(
            "{:>8} {:>9} {:>10} {:>10} {:>9.2} {:>8.2}",
            sb_count,
            ptp.size(),
            labels.essential_count(),
            reduction.removed_sbs,
            removed_frac,
            list.coverage() * 100.0
        );
    }
    println!("(the removal percentage climbs with size as the fault list saturates)");
}
