//! Extension experiment: FlexGripPlus "allows the selection of the number
//! of execution units (8, 16, or 32) in the SM" (paper §II-B). Sweeps the
//! SP-core count and reports how PTP duration and the compaction outcome
//! respond — more cores mean fewer execute passes per warp, shorter
//! durations, and fewer (but wider) per-core pattern streams.

use warpstl_bench::Scale;
use warpstl_core::Compactor;
use warpstl_gpu::{Gpu, GpuConfig};
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::generate_rand_sp;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let ptp = generate_rand_sp(&scale.rand());

    println!("## SP-core sweep (RAND, {} instructions)", ptp.size());
    println!(
        "{:<8} {:>12} {:>14} {:>10} {:>8}",
        "cores", "duration", "patterns/core", "compacted", "size -%"
    );
    for cores in [8usize, 16, 32] {
        let compactor = Compactor {
            gpu: Gpu::new(GpuConfig::with_sp_cores(cores)),
            ..Compactor::default()
        };
        let run = compactor.trace(&ptp).expect("runs");
        let per_core = run.patterns.sp[0].len();
        let mut ctx = compactor.context_for(ModuleKind::SpCore);
        let out = compactor.compact(&ptp, &mut ctx).expect("compacts");
        println!(
            "{:<8} {:>12} {:>14} {:>10} {:>8.2}",
            cores,
            run.cycles,
            per_core,
            out.report.compacted_size,
            out.report.size_reduction_pct()
        );
    }
    println!("(duration shrinks with core count: fewer execute passes per warp)");
}
