//! Ablation A — the stage-3 fault-dropping mechanism across PTPs sharing a
//! module. Compacts MEM twice: once after IMM with the shared (dropped)
//! fault list, once against a fresh list. The shared list must remove at
//! least as many Small Blocks (the paper credits MEM's higher compaction
//! rate to exactly this).

use warpstl_bench::{timed, Scale};
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::{generate_imm, generate_mem};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let imm = generate_imm(&scale.imm());
    let mem = generate_mem(&scale.mem());
    let compactor = Compactor::default();

    // With dropping: IMM first, MEM against the shared list.
    let shared = timed("IMM then MEM (shared list)", || {
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let _ = compactor.compact(&imm, &mut ctx).expect("IMM");
        compactor.compact(&mem, &mut ctx).expect("MEM").report
    });

    // Without dropping: MEM against a fresh list.
    let fresh = timed("MEM alone (fresh list)", || {
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        compactor.compact(&mem, &mut ctx).expect("MEM").report
    });

    println!("## Ablation: fault dropping across PTPs (MEM after IMM)");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>8}",
        "configuration", "SBs", "removed", "instr", "size -%"
    );
    for (name, r) in [("shared (dropped) list", &shared), ("fresh list", &fresh)] {
        println!(
            "{:<26} {:>9} {:>9} {:>9} {:>8.2}",
            name,
            r.sbs_total,
            r.sbs_removed,
            r.compacted_size,
            r.size_reduction_pct()
        );
    }
    assert!(
        shared.sbs_removed >= fresh.sbs_removed,
        "dropping must not reduce compaction"
    );
    println!(
        "dropping gain: {} additional SBs removed",
        shared.sbs_removed - fresh.sbs_removed
    );
}
