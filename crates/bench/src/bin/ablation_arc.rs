//! Ablation C — the stage-1 ARC restriction. The paper excludes basic
//! blocks in parametric loops from compaction because "any instruction
//! removal breaks the devised test algorithm". Compacts CNTRL with and
//! without the ARC filter and reports the coverage cost of ignoring it.

use warpstl_bench::{timed, Scale};
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::generate_cntrl;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let ptp = generate_cntrl(&scale.cntrl());

    let with_arc = timed("ARC respected", || {
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        compactor.compact(&ptp, &mut ctx).expect("CNTRL").report
    });
    let without_arc = timed("ARC ignored", || {
        let compactor = Compactor {
            respect_arc: false,
            ..Compactor::default()
        };
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        compactor.compact(&ptp, &mut ctx).expect("CNTRL").report
    });

    println!("## Ablation: Admissible Regions for Compaction (CNTRL)");
    println!(
        "{:<16} {:>9} {:>9} {:>8} {:>12} {:>8}",
        "configuration", "removed", "instr", "size -%", "ccs", "ΔFC"
    );
    for (name, r) in [("ARC respected", &with_arc), ("ARC ignored", &without_arc)] {
        println!(
            "{:<16} {:>9} {:>9} {:>8.2} {:>12} {:>+8.2}",
            name,
            r.sbs_removed,
            r.compacted_size,
            r.size_reduction_pct(),
            r.compacted_duration,
            r.fc_diff_pct()
        );
    }
    println!(
        "ignoring the ARC removes {} more SBs but touches parametric loops",
        without_arc.sbs_removed.saturating_sub(with_arc.sbs_removed)
    );
}
