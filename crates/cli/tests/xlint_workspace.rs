//! The xlint gate's own oracle: the real workspace must be clean, and the
//! binary's contract (deterministic JSON, nonzero exit on findings) must
//! hold against a seeded-violation tree.

use std::fs;
use std::path::Path;
use std::process::Command;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_is_xlint_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_warpstl"))
        .arg("xlint")
        .arg("--json")
        .arg(workspace_root())
        .output()
        .expect("run warpstl xlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace has xlint findings:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"count\": 0"), "unexpected JSON: {stdout}");
}

#[test]
fn seeded_violations_fail_deterministically_with_sorted_json() {
    let dir = std::env::temp_dir().join(format!("warpstl-xlint-seed-{}", std::process::id()));
    let src = dir.join("crates/app/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    fs::write(
        src.join("lib.rs"),
        "use std::sync::Mutex;\nfn f() { unsafe { g() } }\n",
    )
    .expect("write seeded source");

    let run = || {
        Command::new(env!("CARGO_BIN_EXE_warpstl"))
            .arg("xlint")
            .arg("--json")
            .arg(&dir)
            .output()
            .expect("run warpstl xlint")
    };
    let first = run();
    assert!(
        !first.status.success(),
        "seeded violations must exit nonzero"
    );
    let stdout = String::from_utf8_lossy(&first.stdout).to_string();
    assert!(
        stdout.contains("\"count\": 2"),
        "expected 2 findings: {stdout}"
    );
    // Sorted by (file, line, rule): raw-sync on line 1 precedes
    // safety-comment on line 2.
    let raw = stdout.find("raw-sync").expect("raw-sync finding");
    let safety = stdout
        .find("safety-comment")
        .expect("safety-comment finding");
    assert!(raw < safety, "findings out of order: {stdout}");
    // Byte-identical across runs.
    let second = run();
    assert_eq!(stdout, String::from_utf8_lossy(&second.stdout));

    let _ = fs::remove_dir_all(&dir);
}
