//! Command dispatch and argument handling.

use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use warpstl_core::Compactor;
use warpstl_fault::{
    BridgeConfig, BridgeUniverse, FaultModel, FaultSimConfig, FaultUniverse, SimBackend,
};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::GateKind;
use warpstl_obs::Recorder;
use warpstl_programs::generators::{
    generate_cntrl, generate_fpu, generate_imm, generate_mem, generate_rand_sp, generate_sfu_imm,
    generate_tpgen, CntrlConfig, FpuConfig, ImmConfig, MemConfig, RandConfig, SfuImmConfig,
    TpgenConfig,
};
use warpstl_programs::serialize::{ptp_from_text, ptp_to_text};
use warpstl_programs::{ArcAnalysis, BasicBlocks, Ptp};
use warpstl_store::{atomic_write, EntryKind, EntryStatus, Store};

type CliResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
usage:
  warpstl generate    <IMM|MEM|CNTRL|RAND|TPGEN|SFU_IMM|FPU>
                      [--sb-count N] [--patterns N] [--seed N] [--out FILE]
  warpstl features    <PTP-FILE>
  warpstl compact     <PTP-FILE> [--out FILE] [--reverse] [--no-arc]
                      [--no-prune] [--trace-out FILE] [--json FILE]
                      [--cache-dir DIR] [--no-cache]
                      [--sim-backend auto|event|kernel]
                      [--fault-model stuck-at|bridging] [--lanes 8|16|32]
  warpstl compact-stl <STL-FILE> [--out FILE] [--no-prune]
                      [--trace-out FILE]
                      [--json FILE] [--cache-dir DIR] [--no-cache]
                      [--sim-backend auto|event|kernel]
  warpstl cache       <stats|gc|verify|clear> [--cache-dir DIR]
  warpstl lint        <PTP-FILE> [--json]
  warpstl analyze     <MODULE> [--json] [--implications]
                      [--sim-backend auto|event|kernel]
                      [--fault-model stuck-at|bridging] [--lanes 8|16|32]
                      (a module name from `warpstl modules`, or the
                       `comb-loop` / `undriven` / `redundant-logic`
                       demo fixtures)
  warpstl campaign    <SPEC-FILE> [--jobs N] [--json FILE]
                      [--cache-dir DIR] [--no-cache] [--trace-out FILE]
                      (runs the spec's scenario matrix — module x lanes x
                       fault model x backend x drop mode — over a bounded
                       worker pool with one shared artifact store; the
                       --json report is byte-identical for any --jobs
                       value and across warm-cache reruns)
  warpstl run         <PTP-FILE> [--trace]
  warpstl patterns    <PTP-FILE> --out-dir DIR
  warpstl modules
  warpstl serve       [--addr HOST:PORT] [--workers N] [--queue N]
                      [--cache-dir DIR] [--no-cache]
                      [--sim-backend auto|event|kernel]
  warpstl xlint       [--json] [ROOT]
                      (source-level policy lint over the workspace:
                       raw-sync, safety-comment, no-unwrap,
                       timestamp-in-key; nonzero exit on findings)

caching: compact and compact-stl reuse stored artifacts when --cache-dir
(or the WARPSTL_CACHE_DIR environment variable) names a directory;
--no-cache disables the cache for one run.

fault simulation: --sim-backend picks the engine backend (`auto` uses the
levelized kernel on combinational modules and the event path otherwise;
results are bit-identical either way). The WARPSTL_SIM_BACKEND environment
variable applies when the flag is absent.

pruning: compact and compact-stl drop faults the static implication
engine proves untestable before simulating; --no-prune keeps them in the
universe (detected-fault sets and report JSON are identical either way —
the proofs are sound, so pruned faults were never detectable).

fault models: --fault-model picks the simulated fault universe:
`stuck-at` (default; untestability proofs and pruning apply) or
`bridging` (wired-AND/OR faults over a deterministically sampled set of
adjacent net pairs). --lanes overrides the GPU shape (SP lanes per SM);
the two compose freely with caching — cache keys absorb both.";

/// Parses and runs one invocation.
pub fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("features") => features(&args[1..]),
        Some("compact") => compact(&args[1..]),
        Some("compact-stl") => compact_stl(&args[1..]),
        Some("cache") => cache(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("patterns") => patterns(&args[1..]),
        Some("modules") => modules(),
        Some("serve") => serve(&args[1..]),
        Some("xlint") => crate::xlint::run(&args[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    }
}

/// A minimal flag scanner: `--key value` pairs and boolean `--flags`.
struct Flags<'a> {
    rest: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(rest: &'a [String]) -> Flags<'a> {
        Flags { rest }
    }

    fn value(&self, key: &str) -> Option<&'a str> {
        self.rest
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn num(&self, key: &str) -> Result<Option<u64>, Box<dyn Error>> {
        match self.value(key) {
            None => Ok(None),
            Some(v) => Ok(Some(v.parse().map_err(|_| format!("bad {key}: `{v}`"))?)),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.rest.iter().any(|a| a == key)
    }
}

/// Resolves the cache directory for one invocation: `--no-cache` wins over
/// everything, an explicit `--cache-dir DIR` wins over the environment,
/// and `env` (the caller passes `WARPSTL_CACHE_DIR`'s value, which keeps
/// this testable without mutating the process environment) is the
/// fallback. `None` means caching stays off.
fn resolve_cache_dir(flags: &Flags, env: Option<&str>) -> Option<PathBuf> {
    if flags.has("--no-cache") {
        return None;
    }
    flags.value("--cache-dir").or(env).map(PathBuf::from)
}

/// Resolves `--sim-backend` for one invocation. A valid value pins the
/// engine backend; an invalid one warns (once — mirroring the
/// `WARPSTL_SIM_BACKEND` handling) and falls back to `auto`; an absent
/// flag leaves `Auto`, so the engine still consults the environment.
fn resolve_sim_backend(flags: &Flags) -> SimBackend {
    match flags.value("--sim-backend") {
        None => SimBackend::Auto,
        Some(v) => SimBackend::parse(v).unwrap_or_else(|| {
            eprintln!(
                "warning: invalid --sim-backend value `{v}` (expected auto, event, or kernel); falling back to auto"
            );
            SimBackend::Auto
        }),
    }
}

/// Resolves `--fault-model` for one invocation. Unlike `--sim-backend`
/// (a pure performance knob that degrades to `auto`), the fault model
/// changes what is simulated, so an invalid value is an error, not a
/// warning.
fn resolve_fault_model(flags: &Flags) -> Result<FaultModel, Box<dyn Error>> {
    match flags.value("--fault-model") {
        None => Ok(FaultModel::StuckAt),
        Some(v) => FaultModel::parse(v)
            .ok_or_else(|| format!("invalid --fault-model `{v}` (stuck-at|bridging)").into()),
    }
}

/// Opens the artifact store for a compaction command, if one is
/// configured.
fn open_store(flags: &Flags) -> Result<Option<Arc<Store>>, Box<dyn Error>> {
    let env = warpstl_core::env::string_var("WARPSTL_CACHE_DIR", "a directory path", "no cache");
    match resolve_cache_dir(flags, env.as_deref()) {
        None => Ok(None),
        Some(dir) => Ok(Some(Arc::new(Store::open(&dir)?))),
    }
}

/// One-line cache traffic summary, printed after a cached compaction so
/// cold/warm runs are distinguishable from the console output alone.
fn print_cache_line(store: &Store) {
    let s = store.session();
    println!(
        "cache    {} hit(s), {} miss(es), {} write(s)",
        s.hits, s.misses, s.writes
    );
}

/// Inspects and maintains the on-disk artifact cache. `stats` and
/// `verify` only read; `gc` removes corrupt or version-skewed entries;
/// `clear` removes every recognized entry (foreign files are never
/// touched). `verify` exits nonzero when any entry fails its checksum, so
/// CI can assert cache integrity.
fn cache(args: &[String]) -> CliResult {
    let action = args
        .first()
        .ok_or("cache: missing action (stats|gc|verify|clear)")?;
    let flags = Flags::new(&args[1..]);
    let env = warpstl_core::env::string_var("WARPSTL_CACHE_DIR", "a directory path", "no cache");
    let dir = resolve_cache_dir(&flags, env.as_deref())
        .ok_or("cache: no directory (pass --cache-dir DIR or set WARPSTL_CACHE_DIR)")?;
    let store = Store::open(&dir)?;
    match action.as_str() {
        "stats" => {
            let scan = store.scan()?;
            println!("dir      {}", store.root().display());
            println!(
                "entries  {} valid, {} invalid, {} byte(s) total",
                scan.valid_count(),
                scan.invalid_count(),
                scan.total_bytes()
            );
            for kind in EntryKind::ALL {
                let (count, bytes) = scan.kind_summary(kind);
                println!(
                    "{:<12} {} entr{}, {} byte(s)",
                    kind.name(),
                    count,
                    plural_y(count),
                    bytes
                );
            }
            Ok(())
        }
        "gc" => {
            let (removed, freed) = store.gc()?;
            println!("removed {removed} invalid or stale file(s), freed {freed} byte(s)");
            Ok(())
        }
        "verify" => {
            let scan = store.scan()?;
            for e in &scan.entries {
                let status = match e.status {
                    EntryStatus::Valid => continue,
                    EntryStatus::Corrupt => "corrupt",
                    EntryStatus::VersionMismatch => "version mismatch",
                };
                println!("{}: {status}", e.path.display());
            }
            println!(
                "verified {} entr{}: {} valid, {} invalid",
                scan.entries.len(),
                plural_y(scan.entries.len()),
                scan.valid_count(),
                scan.invalid_count()
            );
            if scan.invalid_count() == 0 {
                Ok(())
            } else {
                Err(format!(
                    "cache: {} invalid entr{}",
                    scan.invalid_count(),
                    plural_y(scan.invalid_count())
                )
                .into())
            }
        }
        "clear" => {
            let removed = store.clear()?;
            println!("removed {removed} entr{}", plural_y(removed));
            Ok(())
        }
        other => Err(format!("cache: unknown action `{other}` (stats|gc|verify|clear)").into()),
    }
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn generate(args: &[String]) -> CliResult {
    let name = args
        .first()
        .ok_or("generate: missing PTP name")?
        .to_ascii_uppercase();
    let flags = Flags::new(&args[1..]);
    let sb = flags.num("--sb-count")?.map(|n| n as usize);
    let patterns = flags.num("--patterns")?.map(|n| n as usize);
    let seed = flags.num("--seed")?;

    let ptp: Ptp = match name.as_str() {
        "IMM" => {
            let mut c = ImmConfig::default();
            if let Some(n) = sb {
                c.sb_count = n;
            }
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_imm(&c)
        }
        "MEM" => {
            let mut c = MemConfig::default();
            if let Some(n) = sb {
                c.sb_count = n;
            }
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_mem(&c)
        }
        "CNTRL" => {
            let mut c = CntrlConfig::default();
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_cntrl(&c)
        }
        "RAND" => {
            let mut c = RandConfig::default();
            if let Some(n) = sb {
                c.sb_count = n;
            }
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_rand_sp(&c)
        }
        "TPGEN" => {
            let mut c = TpgenConfig::default();
            if let Some(n) = patterns {
                c.max_patterns = n;
            }
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_tpgen(&c)
        }
        "SFU_IMM" => {
            let mut c = SfuImmConfig::default();
            if let Some(n) = patterns {
                c.max_patterns = n;
            }
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_sfu_imm(&c)
        }
        "FPU" => {
            let mut c = FpuConfig::default();
            if let Some(n) = sb {
                c.sb_count = n;
            }
            if let Some(s) = seed {
                c.seed = s;
            }
            generate_fpu(&c)
        }
        other => return Err(format!("unknown PTP `{other}`").into()),
    };

    let text = ptp_to_text(&ptp);
    match flags.value("--out") {
        Some(path) => {
            fs::write(path, &text)?;
            eprintln!(
                "wrote {} ({} instructions, target {})",
                path,
                ptp.size(),
                ptp.target
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn load(args: &[String]) -> Result<Ptp, Box<dyn Error>> {
    let path = args.first().ok_or("missing PTP file")?;
    let text = fs::read_to_string(path)?;
    Ok(ptp_from_text(&text)?)
}

fn features(args: &[String]) -> CliResult {
    let ptp = load(args)?;
    let compactor = Compactor::default();
    let ctx = compactor.context_for(ptp.target);
    let f = compactor.features(&ptp, &ctx)?;
    println!("PTP      {}", f.name);
    println!("target   {}", ptp.target);
    println!("size     {} instructions", f.size);
    println!("ARC      {:.1} %", f.arc_fraction * 100.0);
    println!("duration {} ccs", f.duration);
    println!("FC       {:.2} %", f.fault_coverage * 100.0);
    Ok(())
}

/// Builds the recorder backing `--trace-out` (attached only when the flag
/// is present, so the default path stays instrumentation-free) and, after
/// the run, writes the Chrome trace JSON next to a metrics summary.
fn write_trace(path: &str, rec: &Recorder) -> CliResult {
    atomic_write(path, rec.to_chrome_trace().as_bytes())?;
    let m = rec.metrics();
    eprintln!(
        "wrote trace {path} ({} spans, {} counters, {} histograms) — open in ui.perfetto.dev or about://tracing",
        rec.spans().len(),
        m.counters.len(),
        m.histograms.len()
    );
    Ok(())
}

fn compact(args: &[String]) -> CliResult {
    let ptp = load(args)?;
    let flags = Flags::new(&args[1..]);
    let recorder = flags
        .value("--trace-out")
        .map(|_| Arc::new(Recorder::new()));
    let store = open_store(&flags)?;
    let lanes = flags.num("--lanes")?.map_or(0, |n| n as usize);
    let compactor = Compactor {
        gpu: warpstl_core::gpu_for_lanes(lanes)?,
        reverse_patterns: flags.has("--reverse"),
        respect_arc: !flags.has("--no-arc"),
        prune_untestable: !flags.has("--no-prune"),
        fault_model: resolve_fault_model(&flags)?,
        obs: recorder.clone(),
        store: store.clone(),
        fsim_config: FaultSimConfig {
            backend: resolve_sim_backend(&flags),
            ..FaultSimConfig::default()
        },
        ..Compactor::default()
    };
    let mut ctx = compactor.context_for(ptp.target);
    let out = compactor.compact(&ptp, &mut ctx)?;
    let r = &out.report;
    println!(
        "size     {} -> {} instructions ({:+.2} %)",
        r.original_size,
        r.compacted_size,
        -r.size_reduction_pct()
    );
    println!(
        "duration {} -> {} ccs ({:+.2} %)",
        r.original_duration,
        r.compacted_duration,
        -r.duration_reduction_pct()
    );
    println!(
        "coverage {:.2} % -> {:.2} % ({:+.2} pp)",
        r.fc_before * 100.0,
        r.fc_after * 100.0,
        r.fc_diff_pct()
    );
    println!(
        "SBs      {} of {} removed; {} logic + {} fault simulation(s) in {:.2?}",
        r.sbs_removed, r.sbs_total, r.logic_sim_runs, r.fault_sim_runs, r.compaction_time
    );
    if let Some(st) = store.as_deref() {
        print_cache_line(st);
    }
    if let Some(path) = flags.value("--out") {
        atomic_write(path, ptp_to_text(&out.compacted).as_bytes())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.value("--json") {
        atomic_write(path, out.report.to_json().as_bytes())?;
        eprintln!("wrote {path}");
    }
    if let (Some(path), Some(rec)) = (flags.value("--trace-out"), recorder.as_deref()) {
        write_trace(path, rec)?;
    }
    Ok(())
}

/// Statically verifies one PTP file: use-before-def, SB structure,
/// divergence pairing, memory races and relocation soundness — the same
/// rule set the compaction pipeline runs as its post-reduction gate. Exits
/// nonzero (via `Err`) when the verifier finds errors; warnings print but
/// pass.
fn lint(args: &[String]) -> CliResult {
    let ptp = load(args)?;
    let flags = Flags::new(&args[1..]);
    let report = warpstl_verify::verify_ptp(&ptp);
    if flags.has("--json") {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{}: {} verification error(s)",
            ptp.name,
            report.error_count()
        )
        .into())
    }
}

/// Statically analyzes one module netlist: SCOAP testability measures,
/// fault dominance on top of the equivalence-collapsed universe, and the
/// structural lints the compaction pipeline runs as its pre-simulation
/// gate. Exits nonzero (via `Err`) when a lint error fires; warnings print
/// but pass.
fn analyze(args: &[String]) -> CliResult {
    let name = args.first().ok_or("analyze: missing module name")?;
    let flags = Flags::new(&args[1..]);
    // Netlists are shape-independent, but the lane override is validated
    // here so `analyze --lanes 12` fails like any other job-layer caller.
    let lanes = flags.num("--lanes")?.map_or(0, |n| n as usize);
    let _ = warpstl_core::gpu_for_lanes(lanes)?;
    let model = resolve_fault_model(&flags)?;
    let netlist = warpstl_core::jobs::netlist_by_name(name)?;
    let analysis = warpstl_analyze::analyze(&netlist);
    if flags.has("--json") {
        println!("{}", analysis.report.to_json());
    } else {
        let (max_co, mean_co) = analysis.scoap.co_summary();
        println!(
            "netlist    {} ({} gates, depth {})",
            netlist.name(),
            netlist.logic_gate_count(),
            netlist.logic_depth()
        );
        println!("SCOAP CO   max {max_co}, mean {mean_co:.1}");
        if flags.has("--implications") {
            let s = &analysis.report.implications;
            println!(
                "implied    {} implication edge(s), {} impossible literal(s)",
                s.edges, s.impossible
            );
            println!(
                "untestable {} fault site(s) proven, {} equivalence merge(s)",
                s.untestable, s.merges
            );
        }
        let levels = netlist.levelize();
        let combinational = !netlist.gates().iter().any(|g| g.kind == GateKind::Dff);
        let cfg = FaultSimConfig {
            backend: resolve_sim_backend(&flags),
            ..FaultSimConfig::default()
        };
        println!(
            "levels     {} ranks, {} segments; sim backend {}",
            levels.ranks(),
            levels.segments().len(),
            cfg.resolved_backend(combinational)
        );
        // The fault model (and with it the dominance view) is only
        // defined on netlists that pass the lint gate — that is what the
        // gate protects the pipeline from.
        if analysis.is_clean() {
            match model {
                FaultModel::StuckAt => {
                    let universe = FaultUniverse::enumerate(&netlist);
                    let dominance = universe.dominance(&netlist);
                    println!(
                        "faults     {} total, {} after equivalence ({:.1} %)",
                        universe.total_len(),
                        universe.collapsed_len(),
                        universe.collapse_ratio() * 100.0
                    );
                    println!(
                        "dominance  {} direct + {} dominated ({:.1} % of classes simulated)",
                        dominance.direct().len(),
                        dominance.removed().len(),
                        dominance.reduction_ratio() * 100.0
                    );
                }
                FaultModel::Bridging => {
                    let universe = BridgeUniverse::sample(&netlist, &BridgeConfig::default());
                    println!(
                        "bridges    {} wired-AND/OR fault(s) over {} sampled net pair(s)",
                        universe.len(),
                        universe.candidate_pairs()
                    );
                }
            }
        }
        println!("{}", analysis.report);
    }
    if analysis.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{}: {} analysis error(s)",
            netlist.name(),
            analysis.report.error_count()
        )
        .into())
    }
}

fn run(args: &[String]) -> CliResult {
    let ptp = load(args)?;
    let flags = Flags::new(&args[1..]);
    let kernel = ptp.to_kernel()?;
    let opts = if flags.has("--trace") {
        warpstl_gpu::RunOptions::tracing()
    } else {
        warpstl_gpu::RunOptions::default()
    };
    let result = warpstl_gpu::Gpu::default().run(&kernel, &opts)?;
    println!("cycles     {}", result.cycles);
    let digest = result
        .signatures
        .iter()
        .fold(0u32, |acc, &s| acc.rotate_left(1) ^ s);
    println!(
        "signature  {digest:#010x} (over {} threads)",
        result.signatures.len()
    );
    if flags.has("--trace") {
        println!("trace      {} records", result.trace.len());
        let bbs = BasicBlocks::of(&ptp.program);
        let arc = ArcAnalysis::of(&ptp.program, &bbs);
        println!(
            "structure  {} basic blocks, ARC {:.1} %",
            bbs.count(),
            arc.arc_fraction() * 100.0
        );
    }
    Ok(())
}

/// Compacts a whole STL file: PTPs group by target module and compact in
/// file order against shared dropping fault lists, exactly as the paper's
/// flow prescribes (SFU programs get the reverse-order fault simulation).
fn compact_stl(args: &[String]) -> CliResult {
    use warpstl_programs::serialize::{stl_from_text, stl_to_text};
    let path = args.first().ok_or("missing STL file")?;
    let flags = Flags::new(&args[1..]);
    let stl = stl_from_text(&fs::read_to_string(path)?)?;

    // One recorder shared by every module's compactor: the trace shows the
    // whole STL on a single timeline and the metrics aggregate across PTPs.
    let recorder = flags
        .value("--trace-out")
        .map(|_| Arc::new(Recorder::new()));
    let store = open_store(&flags)?;
    let backend = resolve_sim_backend(&flags);
    let outcome = warpstl_core::compact_stl_with(&stl, |module| Compactor {
        reverse_patterns: module == ModuleKind::Sfu,
        prune_untestable: !flags.has("--no-prune"),
        obs: recorder.clone(),
        store: store.clone(),
        fsim_config: FaultSimConfig {
            backend,
            ..FaultSimConfig::default()
        },
        ..Compactor::default()
    })?;
    for r in &outcome.reports {
        println!(
            "{:<10} {:>7} -> {:>6} instr ({:+.2} %), ΔFC {:+.2} pp",
            r.name,
            r.original_size,
            r.compacted_size,
            -r.size_reduction_pct(),
            r.fc_diff_pct()
        );
    }
    println!(
        "STL: {:.2} % size / {:.2} % duration reduction, {} fault simulation(s)",
        outcome.size_reduction_pct(),
        outcome.duration_reduction_pct(),
        outcome.fault_sim_runs()
    );
    if let Some(st) = store.as_deref() {
        print_cache_line(st);
    }
    if let Some(out) = flags.value("--out") {
        atomic_write(out, stl_to_text(&outcome.compacted).as_bytes())?;
        eprintln!("wrote {out}");
    }
    if let Some(path) = flags.value("--json") {
        let body: Vec<String> = outcome.reports.iter().map(|r| r.to_json()).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        atomic_write(path, json.as_bytes())?;
        eprintln!("wrote {path}");
    }
    if let (Some(trace_path), Some(rec)) = (flags.value("--trace-out"), recorder.as_deref()) {
        write_trace(trace_path, rec)?;
    }
    Ok(())
}

/// Dumps the per-module VCDE pattern reports of one traced run — the
/// gate-level test-pattern artifacts of the paper's stage 2.
fn patterns(args: &[String]) -> CliResult {
    let ptp = load(args)?;
    let flags = Flags::new(&args[1..]);
    let dir = flags.value("--out-dir").ok_or("missing --out-dir DIR")?;
    fs::create_dir_all(dir)?;
    let kernel = ptp.to_kernel()?;
    let run = warpstl_gpu::Gpu::default().run(&kernel, &warpstl_gpu::RunOptions::capture_all())?;

    let mut written = Vec::new();
    let mut dump = |name: String, seq: &warpstl_netlist::PatternSeq| -> CliResult {
        if seq.is_empty() {
            return Ok(());
        }
        let path = format!("{dir}/{name}.vcde");
        fs::write(&path, seq.to_vcde())?;
        written.push((name, seq.len()));
        Ok(())
    };
    dump("decoder_unit".into(), &run.patterns.du)?;
    for (i, s) in run.patterns.sp.iter().enumerate() {
        dump(format!("sp_core{i}"), s)?;
    }
    for (i, s) in run.patterns.sfu.iter().enumerate() {
        dump(format!("sfu{i}"), s)?;
    }
    for (i, s) in run.patterns.fp32.iter().enumerate() {
        dump(format!("fp32_{i}"), s)?;
    }
    for (name, n) in &written {
        println!("{name}: {n} patterns");
    }
    println!("wrote {} VCDE files to {dir}", written.len());
    Ok(())
}

/// Runs the compaction daemon in the foreground: binds, prints the URL
/// (port 0 resolves to the actually-bound port, so scripts can parse it),
/// and blocks until `POST /shutdown` or SIGTERM/SIGINT drains the queue.
/// The cache and backend flags mean exactly what they mean on `compact`;
/// every job shares the one store.
fn serve(args: &[String]) -> CliResult {
    let flags = Flags::new(args);
    let env = warpstl_core::env::string_var("WARPSTL_CACHE_DIR", "a directory path", "no cache");
    let config = warpstl_serve::ServeConfig {
        addr: flags.value("--addr").unwrap_or("127.0.0.1:0").to_string(),
        workers: flags.num("--workers")?.map(|n| n as usize),
        queue_cap: flags
            .num("--queue")?
            .map_or(warpstl_serve::ServeConfig::default().queue_cap, |n| {
                n as usize
            }),
        cache_dir: resolve_cache_dir(&flags, env.as_deref()),
        backend: resolve_sim_backend(&flags),
    };
    warpstl_serve::run(&config, |addr| {
        // Stdout is line-buffered: the URL reaches a piped reader
        // immediately, which is what the smoke scripts parse.
        println!("serving on http://{addr}");
    })?;
    println!("drained");
    Ok(())
}

/// Runs a campaign spec: expands the scenario matrix, fans the cells out
/// over a bounded worker pool sharing one warm artifact store, prints the
/// per-cell table plus the best-shape aggregates, and writes the
/// deterministic report JSON. Failed cells (bad GPU shape, compaction
/// failure) are error rows, not fatal — the command only exits nonzero
/// when *no* cell completed (or on spec/IO errors).
fn campaign(args: &[String]) -> CliResult {
    let path = args.first().ok_or("campaign: missing SPEC file")?;
    let flags = Flags::new(&args[1..]);
    let spec = warpstl_campaign::CampaignSpec::parse(&fs::read_to_string(path)?)
        .map_err(|e| format!("campaign spec {path}: {e}"))?;
    let store = open_store(&flags)?;
    let recorder = flags
        .value("--trace-out")
        .map(|_| Arc::new(Recorder::new()));
    let config = warpstl_campaign::CampaignConfig {
        jobs: flags.num("--jobs")?.map_or(0, |n| n as usize),
        store: store.clone(),
        obs: recorder.clone(),
    };
    let report = warpstl_campaign::run_campaign(&spec, &config);
    print!("{report}");
    if let Some(st) = store.as_deref() {
        print_cache_line(st);
    }
    if let Some(out) = flags.value("--json") {
        atomic_write(out, report.to_json().as_bytes())?;
        eprintln!("wrote {out}");
    }
    if let (Some(trace_path), Some(rec)) = (flags.value("--trace-out"), recorder.as_deref()) {
        write_trace(trace_path, rec)?;
    }
    if report.ok_count() == 0 {
        return Err(format!("campaign {}: every cell failed", spec.name).into());
    }
    Ok(())
}

fn modules() -> CliResult {
    println!(
        "{:<14} {:>7} {:>6} {:>8} {:>9} {:>10} {:>10}",
        "module", "gates", "depth", "inputs", "outputs", "faults", "collapsed"
    );
    for kind in ModuleKind::ALL {
        let n = kind.build();
        let u = FaultUniverse::enumerate(&n);
        println!(
            "{:<14} {:>7} {:>6} {:>8} {:>9} {:>10} {:>10}",
            kind.name(),
            n.logic_gate_count(),
            n.logic_depth(),
            n.inputs().width(),
            n.outputs().width(),
            u.total_len(),
            u.collapsed_len()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&s(&["--help"])).is_ok());
        assert!(dispatch(&s(&[])).is_ok());
        assert!(dispatch(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn modules_lists_all() {
        assert!(dispatch(&s(&["modules"])).is_ok());
    }

    #[test]
    fn generate_compact_round_trip_via_files() {
        let dir = std::env::temp_dir().join("warpstl-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let ptp_path = dir.join("imm.ptp");
        let out_path = dir.join("imm-compact.ptp");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "6",
            "--out",
            ptp_path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        let compacted = ptp_from_text(&fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(compacted.size() > 0);
        dispatch(&s(&["run", out_path.to_str().unwrap(), "--trace"])).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_stl_and_patterns_flow() {
        use warpstl_programs::generators::{generate_imm, ImmConfig};
        use warpstl_programs::serialize::stl_to_text;
        use warpstl_programs::Stl;
        let dir = std::env::temp_dir().join("warpstl-cli-stl-test");
        fs::create_dir_all(&dir).unwrap();
        let stl_path = dir.join("lib.stl");
        let out_path = dir.join("lib-compact.stl");
        let mut stl = Stl::new("lib");
        stl.push(generate_imm(&ImmConfig {
            sb_count: 4,
            ..ImmConfig::default()
        }));
        fs::write(&stl_path, stl_to_text(&stl)).unwrap();
        dispatch(&s(&[
            "compact-stl",
            stl_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        let back =
            warpstl_programs::serialize::stl_from_text(&fs::read_to_string(&out_path).unwrap())
                .unwrap();
        assert_eq!(back.len(), 1);

        // VCDE dump of the compacted PTP.
        let ptp_path = dir.join("only.ptp");
        fs::write(
            &ptp_path,
            warpstl_programs::serialize::ptp_to_text(&back.ptps()[0]),
        )
        .unwrap();
        let vcde_dir = dir.join("vcde");
        dispatch(&s(&[
            "patterns",
            ptp_path.to_str().unwrap(),
            "--out-dir",
            vcde_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let du = fs::read_to_string(vcde_dir.join("decoder_unit.vcde")).unwrap();
        assert!(du.starts_with("VCDE 1 "));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_out_writes_chrome_trace_with_stage_spans() {
        let dir = std::env::temp_dir().join("warpstl-cli-trace-test");
        fs::create_dir_all(&dir).unwrap();
        let ptp_path = dir.join("imm.ptp");
        let trace_path = dir.join("trace.json");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "4",
            "--out",
            ptp_path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let trace = fs::read_to_string(&trace_path).unwrap();
        assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
        for stage in [
            "stage.trace",
            "stage.fsim",
            "stage.label",
            "stage.reduce",
            "stage.verify",
            "stage.eval",
        ] {
            assert!(trace.contains(&format!("\"{stage}\"")), "missing {stage}");
        }
        assert!(trace.contains("\"fsim.worker\""));
        assert!(trace.contains("\"warpstlMetrics\""));

        // The same flag on compact-stl shares one recorder across modules.
        let stl_path = dir.join("lib.stl");
        let stl_trace = dir.join("stl-trace.json");
        {
            use warpstl_programs::generators::{generate_imm, ImmConfig};
            use warpstl_programs::serialize::stl_to_text;
            use warpstl_programs::Stl;
            let mut stl = Stl::new("lib");
            stl.push(generate_imm(&ImmConfig {
                sb_count: 4,
                ..ImmConfig::default()
            }));
            fs::write(&stl_path, stl_to_text(&stl)).unwrap();
        }
        dispatch(&s(&[
            "compact-stl",
            stl_path.to_str().unwrap(),
            "--trace-out",
            stl_trace.to_str().unwrap(),
        ]))
        .unwrap();
        let trace = fs::read_to_string(&stl_trace).unwrap();
        assert!(trace.contains("\"stl.module\""));
        assert!(trace.contains("\"stage.fsim\""));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_flags_broken_cptp_and_passes_clean_one() {
        use warpstl_gpu::KernelConfig;
        use warpstl_isa::asm;
        let dir = std::env::temp_dir().join("warpstl-cli-lint-test");
        fs::create_dir_all(&dir).unwrap();

        // The hand-crafted broken CPTP: use-before-def on R1/R6 plus an
        // unpaired SSY.
        let broken = Ptp::new(
            "broken",
            ModuleKind::DecoderUnit,
            KernelConfig::new(1, 32),
            asm::assemble("SSY 0x3;\nIADD R4, R1, R1;\nSTG [R6], R4;\nEXIT;").unwrap(),
        );
        let broken_path = dir.join("broken.ptp");
        fs::write(&broken_path, ptp_to_text(&broken)).unwrap();
        assert!(dispatch(&s(&["lint", broken_path.to_str().unwrap()])).is_err());
        assert!(dispatch(&s(&["lint", broken_path.to_str().unwrap(), "--json"])).is_err());

        // A pipeline-relevant generated PTP verifies clean.
        let clean_path = dir.join("clean.ptp");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "6",
            "--out",
            clean_path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&s(&["lint", clean_path.to_str().unwrap()])).unwrap();
        dispatch(&s(&["lint", clean_path.to_str().unwrap(), "--json"])).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_passes_modules_and_flags_fixtures() {
        // Every bundled module passes the gate, plain and JSON.
        for kind in ModuleKind::ALL {
            assert!(dispatch(&s(&["analyze", kind.name()])).is_ok());
        }
        assert!(dispatch(&s(&["analyze", "decoder_unit", "--json"])).is_ok());

        // The seeded fixtures fail with a nonzero exit (an Err here).
        let err = dispatch(&s(&["analyze", "comb-loop"])).unwrap_err();
        assert!(err.to_string().contains("analysis error"));
        assert!(dispatch(&s(&["analyze", "comb-loop", "--json"])).is_err());
        assert!(dispatch(&s(&["analyze", "undriven"])).is_err());

        // Unknown names and a missing argument are flagged.
        assert!(dispatch(&s(&["analyze", "warp_scheduler"])).is_err());
        assert!(dispatch(&s(&["analyze"])).is_err());
    }

    #[test]
    fn analyze_implications_and_redundant_fixture() {
        // The redundant-logic fixture warns (the gate passes) and its
        // implication summary is reachable in both output modes.
        assert!(dispatch(&s(&["analyze", "redundant-logic"])).is_ok());
        assert!(dispatch(&s(&["analyze", "redundant-logic", "--implications"])).is_ok());
        assert!(dispatch(&s(&["analyze", "redundant-logic", "--json"])).is_ok());
        assert!(dispatch(&s(&["analyze", "decoder_unit", "--implications"])).is_ok());
    }

    #[test]
    fn no_prune_compact_reports_are_byte_identical() {
        let dir =
            std::env::temp_dir().join(format!("warpstl-cli-prune-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ptp_path = dir.join("imm.ptp");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "4",
            "--out",
            ptp_path.to_str().unwrap(),
        ]))
        .unwrap();
        // The untestability proofs are sound: dropping proven faults from
        // the simulated universe must not change what gets detected, so
        // the deterministic report JSON is byte-identical either way.
        let mut reports = Vec::new();
        for no_prune in [false, true] {
            let out = dir.join(format!("prune-{no_prune}.json"));
            let mut args = s(&["compact", ptp_path.to_str().unwrap()]);
            if no_prune {
                args.push("--no-prune".into());
            }
            args.extend(s(&["--json", out.to_str().unwrap()]));
            dispatch(&args).unwrap();
            reports.push(fs::read_to_string(&out).unwrap());
        }
        assert_eq!(reports[0], reports[1], "pruned vs unpruned report JSON");
        assert!(reports[0].contains("\"untestable\""));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_backend_flag_resolves_and_tolerates_garbage() {
        for (v, want) in [
            ("auto", SimBackend::Auto),
            ("event", SimBackend::Event),
            ("kernel", SimBackend::Kernel),
            ("kernel64", SimBackend::Kernel64),
        ] {
            let args = s(&["--sim-backend", v]);
            assert_eq!(resolve_sim_backend(&Flags::new(&args)), want);
        }
        // No flag and an invalid value both resolve to Auto (the invalid
        // value warns but must not abort the compaction).
        let args = s(&[]);
        assert_eq!(resolve_sim_backend(&Flags::new(&args)), SimBackend::Auto);
        let args = s(&["--sim-backend", "quantum"]);
        assert_eq!(resolve_sim_backend(&Flags::new(&args)), SimBackend::Auto);
    }

    #[test]
    fn compact_report_is_backend_invariant() {
        let dir =
            std::env::temp_dir().join(format!("warpstl-cli-backend-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ptp_path = dir.join("imm.ptp");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "4",
            "--out",
            ptp_path.to_str().unwrap(),
        ]))
        .unwrap();

        // The report JSON carries no timings, so the event path and the
        // kernel must produce byte-identical reports — the CLI-level face
        // of the engine equivalence suite. An invalid value falls back to
        // auto and still completes.
        let mut reports = Vec::new();
        for backend in ["event", "kernel", "bogus"] {
            let out = dir.join(format!("{backend}.json"));
            dispatch(&s(&[
                "compact",
                ptp_path.to_str().unwrap(),
                "--sim-backend",
                backend,
                "--json",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            reports.push(fs::read_to_string(&out).unwrap());
        }
        assert_eq!(reports[0], reports[1], "event vs kernel report JSON");
        assert_eq!(reports[1], reports[2], "auto fallback report JSON");

        // `analyze` accepts the flag too and reports the resolved backend.
        dispatch(&s(&["analyze", "decoder_unit", "--sim-backend", "event"])).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_model_and_lanes_flags_reshape_compact() {
        let dir =
            std::env::temp_dir().join(format!("warpstl-cli-model-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ptp_path = dir.join("imm.ptp");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "4",
            "--out",
            ptp_path.to_str().unwrap(),
        ]))
        .unwrap();

        let sa = dir.join("sa.json");
        let bridge = dir.join("bridge.json");
        dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--fault-model",
            "stuck-at",
            "--lanes",
            "16",
            "--json",
            sa.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--fault-model",
            "bridging",
            "--json",
            bridge.to_str().unwrap(),
        ]))
        .unwrap();
        let bridge_json = fs::read_to_string(&bridge).unwrap();
        // Bridging never claims stuck-at untestability proofs.
        assert!(bridge_json.contains("\"untestable\": 0"), "{bridge_json}");
        assert_ne!(fs::read_to_string(&sa).unwrap(), bridge_json);

        // Invalid values are hard errors, not silent fallbacks.
        assert!(dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--fault-model",
            "transient"
        ]))
        .is_err());
        assert!(dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--lanes",
            "12"
        ]))
        .is_err());

        // `analyze` takes both flags; bad shapes fail there identically.
        dispatch(&s(&[
            "analyze",
            "decoder_unit",
            "--fault-model",
            "bridging",
            "--lanes",
            "32",
        ]))
        .unwrap();
        assert!(dispatch(&s(&["analyze", "decoder_unit", "--lanes", "12"])).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_runs_a_matrix_deterministically() {
        let dir =
            std::env::temp_dir().join(format!("warpstl-cli-campaign-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        fs::write(
            &spec_path,
            r#"{"name": "cli-smoke", "modules": ["decoder_unit"], "lanes": [8, 16], "sb_count": 3}"#,
        )
        .unwrap();

        let cache = dir.join("cache");
        let r1 = dir.join("r1.json");
        let r2 = dir.join("r2.json");
        for (jobs, out) in [("1", &r1), ("4", &r2)] {
            dispatch(&s(&[
                "campaign",
                spec_path.to_str().unwrap(),
                "--jobs",
                jobs,
                "--cache-dir",
                cache.to_str().unwrap(),
                "--json",
                out.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let cold = fs::read_to_string(&r1).unwrap();
        let warm = fs::read_to_string(&r2).unwrap();
        assert_eq!(cold, warm, "--jobs 1 cold vs --jobs 4 warm report JSON");
        assert!(cold.contains("\"campaign\": \"cli-smoke\""));
        assert!(cold.contains("\"cells_total\": 2"));
        assert!(cold.contains("\"best_shape\""));

        // Spec and file errors are surfaced.
        assert!(dispatch(&s(&["campaign"])).is_err());
        assert!(dispatch(&s(&["campaign", "/nonexistent/spec.json"])).is_err());
        let bad = dir.join("bad.json");
        fs::write(&bad, r#"{"modules": []}"#).unwrap();
        assert!(dispatch(&s(&["campaign", bad.to_str().unwrap()])).is_err());

        // A matrix with no completable cell exits nonzero.
        let doomed = dir.join("doomed.json");
        fs::write(
            &doomed,
            r#"{"modules": ["decoder_unit"], "lanes": [12], "sb_count": 3}"#,
        )
        .unwrap();
        let err = dispatch(&s(&["campaign", doomed.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("every cell failed"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_rejects_bad_flags() {
        assert!(dispatch(&s(&["generate", "IMM", "--sb-count", "zebra"])).is_err());
        assert!(dispatch(&s(&["generate", "BOGUS"])).is_err());
        assert!(dispatch(&s(&["features", "/nonexistent/x.ptp"])).is_err());
    }

    #[test]
    fn cache_dir_resolver_precedence() {
        let args = s(&["--cache-dir", "/x"]);
        let flags = Flags::new(&args);
        assert_eq!(
            resolve_cache_dir(&flags, Some("/env")),
            Some(PathBuf::from("/x"))
        );

        let args = s(&[]);
        let flags = Flags::new(&args);
        assert_eq!(
            resolve_cache_dir(&flags, Some("/env")),
            Some(PathBuf::from("/env"))
        );
        assert_eq!(resolve_cache_dir(&flags, None), None);

        let args = s(&["--no-cache", "--cache-dir", "/x"]);
        let flags = Flags::new(&args);
        assert_eq!(resolve_cache_dir(&flags, Some("/env")), None);
    }

    #[test]
    fn cached_compact_is_byte_identical_and_cache_subcommands_work() {
        let dir =
            std::env::temp_dir().join(format!("warpstl-cli-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ptp_path = dir.join("imm.ptp");
        dispatch(&s(&[
            "generate",
            "IMM",
            "--sb-count",
            "4",
            "--out",
            ptp_path.to_str().unwrap(),
        ]))
        .unwrap();

        let cache_dir = dir.join("cache");
        let r1 = dir.join("r1.json");
        let r2 = dir.join("r2.json");
        for report in [&r1, &r2] {
            dispatch(&s(&[
                "compact",
                ptp_path.to_str().unwrap(),
                "--cache-dir",
                cache_dir.to_str().unwrap(),
                "--json",
                report.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let cold = fs::read_to_string(&r1).unwrap();
        let warm = fs::read_to_string(&r2).unwrap();
        assert_eq!(cold, warm, "warm rerun must reproduce the report JSON");
        assert!(cold.contains("\"fc_after\""));

        // The warm run found entries on disk; stats/verify agree.
        let cd = cache_dir.to_str().unwrap();
        dispatch(&s(&["cache", "stats", "--cache-dir", cd])).unwrap();
        dispatch(&s(&["cache", "verify", "--cache-dir", cd])).unwrap();

        // Corrupt every entry: verify flags it, gc reclaims it, verify
        // passes again, and clear empties the rest.
        let mut corrupted = 0;
        for dent in fs::read_dir(&cache_dir).unwrap() {
            let path = dent.unwrap().path();
            let mut bytes = fs::read(&path).unwrap();
            let len = bytes.len();
            bytes.truncate(len / 2);
            fs::write(&path, &bytes).unwrap();
            corrupted += 1;
        }
        assert!(corrupted > 0, "the cached run must have written entries");
        assert!(dispatch(&s(&["cache", "verify", "--cache-dir", cd])).is_err());
        dispatch(&s(&["cache", "gc", "--cache-dir", cd])).unwrap();
        dispatch(&s(&["cache", "verify", "--cache-dir", cd])).unwrap();
        dispatch(&s(&["cache", "clear", "--cache-dir", cd])).unwrap();
        assert!(warpstl_store::Store::open(&cache_dir)
            .unwrap()
            .scan()
            .unwrap()
            .entries
            .is_empty());

        // --no-cache wins over --cache-dir: no new entries appear.
        dispatch(&s(&[
            "compact",
            ptp_path.to_str().unwrap(),
            "--cache-dir",
            cd,
            "--no-cache",
        ]))
        .unwrap();
        assert!(warpstl_store::Store::open(&cache_dir)
            .unwrap()
            .scan()
            .unwrap()
            .entries
            .is_empty());

        // Bad invocations are flagged.
        assert!(dispatch(&s(&["cache", "frobnicate", "--cache-dir", cd])).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
