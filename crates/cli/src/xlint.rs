//! `warpstl xlint` — the workspace's source-level lint.
//!
//! Four policy rules that `rustc`/`clippy` cannot express because they
//! are *project* conventions, enforced by a dependency-free line/token
//! scanner (no syn, no proc-macros — the build is dependency-light by
//! policy):
//!
//! | rule | policy |
//! |---|---|
//! | `raw-sync` | no `std::sync` primitives outside `crates/sync` — every lock/atomic must be a `warpstl_sync` wrapper so the model checker sees it (`Arc`/`Weak`/`Ordering` excepted: no interleaving semantics) |
//! | `safety-comment` | every `unsafe` carries a `// SAFETY:` comment in the contiguous comment block above it |
//! | `no-unwrap` | no `.unwrap()`/`.expect()` in `crates/serve`/`crates/store`/`crates/campaign` non-test code — these crates sit on untrusted-input paths (request bytes, on-disk cache bytes, campaign spec files) and must degrade, not panic |
//! | `timestamp-in-key` | no wall-clock reads (`SystemTime::now`, `UNIX_EPOCH`, `Instant::now`) in the store's hash/key/codec files — cache keys are a determinism contract |
//!
//! Scope: `src/**/*.rs` of every workspace crate (`crates/*` and the root
//! package). `shims/` (vendored stand-ins) and `tests/`/`benches/` trees
//! are out of scope; `#[cfg(test)]` regions inside `src` are skipped for
//! `raw-sync` and `no-unwrap` (test code may take shortcuts) but not for
//! `safety-comment`.
//!
//! A finding can be waived in place with `// xlint: allow(<rule>)` on the
//! same or the preceding line — the annotation is greppable, so every
//! waiver is auditable.
//!
//! Output is deterministic: findings sort by (file, line, rule), paths
//! are `/`-separated and root-relative. `--json` emits a machine-readable
//! document; either way a nonzero exit reports that findings exist
//! (`scripts/check.sh` gates on it).

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Root-relative, `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `raw-sync`.
    pub rule: &'static str,
    /// Human-readable finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Runs the subcommand: `warpstl xlint [--json] [ROOT]`.
///
/// # Errors
///
/// I/O errors walking the tree, plus a summary error when findings exist
/// (that is the nonzero exit the CI gate keys on).
pub fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let json = args.iter().any(|a| a == "--json");
    let root: PathBuf = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "xlint: `{}` does not look like a workspace root (no Cargo.toml)",
            root.display()
        )
        .into());
    }
    let diagnostics = lint_workspace(&root)?;
    if json {
        println!("{}", to_json(&diagnostics));
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
    }
    if diagnostics.is_empty() {
        if !json {
            println!("xlint: clean");
        }
        Ok(())
    } else {
        Err(format!("xlint: {} finding(s)", diagnostics.len()).into())
    }
}

/// Lints every in-scope file under `root`; findings sorted by
/// (file, line, rule).
///
/// # Errors
///
/// Propagates directory-walk and file-read failures.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    // The root package's own sources, when present.
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut diagnostics = Vec::new();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        lint_file(&rel, &text, &mut diagnostics);
    }
    diagnostics.sort();
    Ok(diagnostics)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Deterministic JSON rendering (the findings are already sorted).
#[must_use]
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}", diagnostics.len()));
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// `std::sync` items that are fine anywhere: no interleaving semantics
/// (`Arc`/`Weak` are refcounts, `Ordering` is a marker enum).
const SYNC_ALLOWED: &[&str] = &["Arc", "Weak", "Ordering"];

fn lint_file(rel: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let (code_lines, comment_lines) = split_code_and_comments(text);
    let in_sync_crate = rel.starts_with("crates/sync/");
    let unwrap_scoped = rel.starts_with("crates/serve/src")
        || rel.starts_with("crates/store/src")
        || rel.starts_with("crates/campaign/src");
    let timestamp_scoped = matches!(
        rel,
        "crates/store/src/hash.rs" | "crates/store/src/codec.rs" | "crates/store/src/artifacts.rs"
    );

    let allowed = |idx: usize, rule: &str| -> bool {
        let marker = format!("xlint: allow({rule})");
        comment_lines[idx].contains(&marker)
            || (idx > 0 && comment_lines[idx - 1].contains(&marker))
    };
    let mut push = |idx: usize, rule: &'static str, message: String| {
        if !allowed(idx, rule) {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: idx + 1,
                rule,
                message,
            });
        }
    };

    // #[cfg(test)] region tracking over the comment-stripped code.
    let mut depth: usize = 0;
    let mut pending_test_attr: usize = 0; // lines left for the `{` to appear
    let mut test_region_floor: Option<usize> = None;

    for (idx, code) in code_lines.iter().enumerate() {
        let in_test = test_region_floor.is_some();

        if !in_test && code.contains("#[cfg(test)]") {
            pending_test_attr = 4; // this line plus the 3 that may follow
        }

        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if pending_test_attr > 0 && opens > 0 {
            test_region_floor = Some(depth);
            pending_test_attr = 0;
        }
        pending_test_attr = pending_test_attr.saturating_sub(1);
        depth += opens;
        depth = depth.saturating_sub(closes);
        if let Some(floor) = test_region_floor {
            if depth <= floor {
                test_region_floor = None;
            }
        }

        // safety-comment: applies everywhere, test code included. The
        // justification must be on the `unsafe` line itself or in the
        // contiguous comment block immediately above it (clippy's
        // `undocumented_unsafe_blocks` convention).
        if has_word(code, "unsafe") {
            let mut documented = comment_lines[idx].contains("SAFETY:");
            let mut i = idx;
            while !documented && i > 0 {
                i -= 1;
                if !code_lines[i].trim().is_empty() {
                    break; // a code line ends the comment block
                }
                if comment_lines[i].trim().is_empty() {
                    break; // a blank line ends the comment block
                }
                documented = comment_lines[i].contains("SAFETY:");
            }
            if !documented {
                push(
                    idx,
                    "safety-comment",
                    "`unsafe` without a `// SAFETY:` comment in the block's preceding comment"
                        .to_string(),
                );
            }
        }

        if in_test {
            continue;
        }

        if !in_sync_crate {
            for item in raw_sync_items(code) {
                push(
                    idx,
                    "raw-sync",
                    format!(
                        "raw `std::sync` item `{item}` outside crates/sync — use the \
                         `warpstl_sync` wrapper so the model checker sees it"
                    ),
                );
            }
        }

        if unwrap_scoped {
            for call in [".unwrap()", ".expect("] {
                if code.contains(call) {
                    push(
                        idx,
                        "no-unwrap",
                        format!(
                            "`{call}` on an untrusted-input path — degrade to an error \
                             (JobError / miss), never panic on request or cache bytes",
                        ),
                    );
                }
            }
        }

        if timestamp_scoped {
            for clock in ["SystemTime::now", "Instant::now", "UNIX_EPOCH"] {
                if code.contains(clock) {
                    push(
                        idx,
                        "timestamp-in-key",
                        format!(
                            "`{clock}` in hash/key derivation — cache keys must be \
                                 deterministic functions of the input"
                        ),
                    );
                }
            }
        }
    }
}

/// Identifiers that make a `std::sync::` path a violation on this line.
fn raw_sync_items(code: &str) -> Vec<String> {
    let mut found = Vec::new();
    let mut rest = code;
    while let Some(at) = rest.find("std::sync::") {
        let tail = &rest[at + "std::sync::".len()..];
        // Judge every identifier up to the end of the `use` item or
        // expression fragment on this line.
        let stop = tail.find(';').unwrap_or(tail.len());
        for token in tail[..stop].split(|c: char| !c.is_alphanumeric() && c != '_') {
            let Some(first) = token.chars().next() else {
                continue;
            };
            // Primitive types are capitalized; `mpsc` is the one banned
            // lowercase module. Everything else lowercase is a harmless
            // path segment (`atomic`, `self`) or method call.
            let banned =
                (first.is_uppercase() && !SYNC_ALLOWED.contains(&token)) || token == "mpsc";
            if banned && !found.contains(&token.to_string()) {
                found.push(token.to_string());
            }
        }
        rest = &rest[at + "std::sync::".len()..];
    }
    found
}

fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(at) = code[start..].find(word) {
        let begin = start + at;
        let end = begin + word.len();
        let left_ok = begin == 0
            || !code[..begin]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let right_ok = !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Splits a source file into parallel per-line views: code with comments
/// and string/char-literal *contents* blanked, and comments alone. Both
/// views keep the original line structure so indices line up.
fn split_code_and_comments(text: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = State::Code;
    let mut code = String::with_capacity(text.len());
    let mut comments = String::with_capacity(text.len() / 4);
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push('\n');
            comments.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comments.push_str("//");
                    code.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    comments.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    code.push('"');
                    comments.push(' ');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (hashes, consumed) = raw_string_open(&bytes, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        code.push(' ');
                        comments.push(' ');
                    }
                    code.push('"');
                    i += consumed + 1; // the opening quote
                    comments.push(' ');
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`): a lifetime's
                    // identifier is not followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        code.push('\'');
                    } else {
                        state = State::Char;
                        code.push('\'');
                    }
                    comments.push(' ');
                    i += 1;
                }
                c => {
                    code.push(c);
                    comments.push(' ');
                    i += 1;
                }
            },
            State::LineComment => {
                comments.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    comments.push_str("*/");
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comments.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else {
                    comments.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    code.push_str("  ");
                    comments.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    code.push('"');
                    comments.push(' ');
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&bytes, i, hashes) {
                    state = State::Code;
                    code.push('"');
                    comments.push(' ');
                    for _ in 0..hashes {
                        code.push(' ');
                        comments.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => {
                    code.push_str("  ");
                    comments.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    state = State::Code;
                    code.push('\'');
                    comments.push(' ');
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
            },
        }
    }
    (
        code.lines().map(str::to_string).collect(),
        comments.lines().map(str::to_string).collect(),
    )
}

/// `r"`, `r#"`, `br"`, `br#"` — a raw string opener at `i`?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Not part of an identifier (e.g. `var"`, `attr#`).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// (hash count, chars before the opening quote) for the opener at `i`.
fn raw_string_open(bytes: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i)
}

fn raw_string_closes(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        lint_file(rel, text, &mut out);
        out.sort();
        out
    }

    #[test]
    fn raw_sync_flags_primitives_but_not_arc_or_ordering() {
        let src = "use std::sync::{Arc, Mutex};\nuse std::sync::atomic::Ordering;\nuse std::sync::atomic::{AtomicU64, Ordering};\n";
        let diags = lint_str("crates/fault/src/lib.rs", src);
        let items: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(items, ["raw-sync", "raw-sync"]);
        assert!(diags[0].message.contains("`Mutex`"), "{}", diags[0].message);
        assert!(
            diags[1].message.contains("`AtomicU64`"),
            "{}",
            diags[1].message
        );
        assert!(lint_str("crates/sync/src/primitives.rs", src).is_empty());
    }

    #[test]
    fn raw_sync_skips_test_modules_strings_and_comments() {
        let src = "\
// std::sync::Mutex in a comment is fine
const DOC: &str = \"std::sync::Mutex in a string is fine\";
#[cfg(test)]
mod tests {
    use std::sync::Mutex;
}
";
        assert!(lint_str("crates/fault/src/lib.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_rule_accepts_nearby_comment_and_flags_bare_unsafe() {
        let good = "// SAFETY: the pointer is valid for the call.\nunsafe { go() }\n";
        assert!(lint_str("crates/gpu/src/lib.rs", good).is_empty());
        // A long justification works as long as the block is contiguous,
        // wherever the SAFETY: tag sits in it.
        let long = "\
// SAFETY: the handler address is a valid fn pointer for the
// process's lifetime, the body is async-signal-safe, and
// replacing the prior disposition is the intended effect;
// see signal-safety(7).
unsafe { go() }
";
        assert!(lint_str("crates/gpu/src/lib.rs", long).is_empty());
        let bad = "unsafe { go() }\n";
        let diags = lint_str("crates/gpu/src/lib.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "safety-comment");
        // A blank line between the comment and the block breaks the tie.
        let detached = "// SAFETY: stale justification\n\nunsafe { go() }\n";
        assert_eq!(lint_str("crates/gpu/src/lib.rs", detached).len(), 1);
        // `unsafe` in an identifier or string is not the keyword.
        assert!(lint_str("crates/gpu/src/lib.rs", "let not_unsafe_here = 1;\n").is_empty());
        assert!(lint_str("crates/gpu/src/lib.rs", "let s = \"unsafe\";\n").is_empty());
    }

    #[test]
    fn no_unwrap_applies_only_to_untrusted_input_crates() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n";
        assert_eq!(lint_str("crates/serve/src/http.rs", src).len(), 2);
        assert_eq!(lint_str("crates/store/src/store.rs", src).len(), 2);
        assert_eq!(lint_str("crates/campaign/src/runner.rs", src).len(), 2);
        assert!(lint_str("crates/fault/src/engine.rs", src).is_empty());
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_str("crates/serve/src/http.rs", &test_src).is_empty());
    }

    #[test]
    fn timestamp_rule_guards_the_key_derivation_files() {
        let src = "let t = std::time::SystemTime::now();\n";
        let diags = lint_str("crates/store/src/hash.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "timestamp-in-key");
        assert!(lint_str("crates/store/src/store.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_waives_on_same_or_preceding_line() {
        let same = "use std::sync::Mutex; // xlint: allow(raw-sync)\n";
        assert!(lint_str("crates/fault/src/lib.rs", same).is_empty());
        let preceding = "// xlint: allow(raw-sync)\nuse std::sync::Mutex;\n";
        assert!(lint_str("crates/fault/src/lib.rs", preceding).is_empty());
        // The waiver names the rule: a different rule still fires.
        let wrong = "// xlint: allow(no-unwrap)\nuse std::sync::Mutex;\n";
        assert_eq!(lint_str("crates/fault/src/lib.rs", wrong).len(), 1);
    }

    #[test]
    fn scanner_handles_lifetimes_chars_and_raw_strings() {
        let src = "\
fn f<'a>(x: &'a str) -> char { 'x' }
const R: &str = r#\"std::sync::Mutex \"quoted\" unsafe\"#;
const C: char = '\"';
";
        assert!(lint_str("crates/fault/src/lib.rs", src).is_empty());
    }

    #[test]
    fn json_output_is_deterministic_and_sorted() {
        let src = "use std::sync::Mutex;\nunsafe { go() }\n";
        let diags = lint_str("crates/fault/src/lib.rs", src);
        let json = to_json(&diags);
        assert!(json.contains("\"count\": 2"), "{json}");
        let first = json.find("raw-sync").expect("raw-sync present");
        let second = json.find("safety-comment").expect("safety-comment present");
        assert!(first < second, "findings must sort by (file, line, rule)");
        assert_eq!(to_json(&[]), "{\n  \"findings\": [],\n  \"count\": 0\n}");
    }
}
