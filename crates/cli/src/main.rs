//! `warpstl` — command-line front end for the STL compaction toolkit.
//!
//! ```text
//! warpstl generate <IMM|MEM|CNTRL|RAND|TPGEN|SFU_IMM|FPU> [--sb-count N]
//!                  [--patterns N] [--seed N] [--out FILE]
//! warpstl features <PTP-FILE>
//! warpstl compact  <PTP-FILE> [--out FILE] [--reverse] [--no-arc]
//! warpstl lint     <PTP-FILE> [--json]
//! warpstl run      <PTP-FILE> [--trace]
//! warpstl modules
//! ```
//!
//! PTP files use the text container of
//! [`warpstl_programs::serialize`] (assembly plus `; PTP` headers).

use std::process::ExitCode;

mod cli;
mod xlint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
