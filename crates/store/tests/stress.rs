//! Multi-thread store stress tests: the concurrency contract behind
//! `warpstl serve` sharing one `Arc<Store>` across a worker pool.
//!
//! The store's safety story is *atomic rename, not locks*: concurrent
//! same-key writers each stage a private temp file and rename it over the
//! entry, so the entry file only ever holds one complete, checksummed
//! write (last writer wins). Readers that lose every race still only
//! degrade to plain misses. These tests hammer that story from many
//! threads at once — including a concurrent `gc` — and assert that no
//! read ever returns torn bytes and no benign race is miscounted as
//! corruption.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use warpstl_store::{EntryKind, Key, Store};

fn temp_store(tag: &str) -> Store {
    let dir =
        std::env::temp_dir().join(format!("warpstl-store-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

/// Concurrent same-key writers + readers + a gc loop. Every successful
/// read must be one of the payloads some writer actually wrote (the
/// checksum inside `get` already proves the bytes are untorn; this also
/// proves they are *ours*), and the corrupt-miss counter must stay at
/// zero — vanished or in-flight entries are plain misses, never
/// corruption.
#[test]
fn concurrent_same_key_writers_yield_only_whole_checksummed_reads() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const ROUNDS: usize = 200;

    let store = Arc::new(temp_store("same-key"));
    let key = Key(0xA11);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    for w in 0..WRITERS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                // Distinct valid payloads per (writer, round): a torn
                // read could not produce any of these under a checksum.
                let payload = format!("payload-{w}-{round}");
                store.put(EntryKind::Analysis, key, payload.as_bytes(), None);
            }
        }));
    }

    let mut reader_handles = Vec::new();
    for _ in 0..READERS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        reader_handles.push(std::thread::spawn(move || {
            let mut observed = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if let Some(bytes) = store.get(EntryKind::Analysis, key, None) {
                    let text = String::from_utf8(bytes).expect("payloads are UTF-8");
                    assert!(
                        text.starts_with("payload-"),
                        "read returned bytes no writer wrote: {text:?}"
                    );
                    observed += 1;
                }
            }
            observed
        }));
    }

    // gc runs concurrently with the writers the whole time. The default
    // temp age threshold protects in-flight temp files; all entries the
    // scan sees are valid, so gc must remove nothing.
    let gc_removed = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut removed = 0usize;
            while !stop.load(Ordering::Relaxed) {
                removed += store.gc().unwrap().0;
                std::thread::sleep(Duration::from_millis(1));
            }
            removed
        })
    };

    for handle in handles {
        handle.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed: usize = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(gc_removed.join().unwrap(), 0, "gc deleted live state");

    // Last writer wins: the settled entry is one whole write, and the
    // final read (after all writers joined) sees some writer's last round.
    let settled = store.get(EntryKind::Analysis, key, None).unwrap();
    let text = String::from_utf8(settled).unwrap();
    let last_round = format!("-{}", ROUNDS - 1);
    assert!(
        text.starts_with("payload-") && text.ends_with(&last_round),
        "settled entry is not a final-round write: {text:?}"
    );

    let stats = store.session();
    assert_eq!(
        stats.corrupt, 0,
        "a concurrent read was miscounted as corruption"
    );
    assert_eq!(stats.version_mismatch, 0);
    assert_eq!(stats.write_errors, 0, "gc raced a writer's temp file");
    assert!(observed > 0 || stats.hits > 0, "readers never saw a write");
    let _ = std::fs::remove_dir_all(store.root());
}

/// Writers on *distinct* keys racing a `clear` loop: every read is either
/// a whole write or a miss, and the maintenance lock serializes the two
/// `clear`/`gc` loops (no double-accounted removals, no errors).
#[test]
fn concurrent_clear_and_gc_degrade_reads_to_plain_misses() {
    const KEYS: u64 = 8;
    const ROUNDS: usize = 100;

    let store = Arc::new(temp_store("clear-race"));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for round in 0..ROUNDS {
                for k in 0..KEYS {
                    let payload = format!("entry-{k}-{round}");
                    store.put(
                        EntryKind::FsimStamps,
                        Key(k.into()),
                        payload.as_bytes(),
                        None,
                    );
                }
            }
        })
    };
    let mut maintenance = Vec::new();
    for _ in 0..2 {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        maintenance.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                store.clear().unwrap();
                store.gc().unwrap();
            }
        }));
    }
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for k in 0..KEYS {
                    if let Some(bytes) = store.get(EntryKind::FsimStamps, Key(k.into()), None) {
                        let text = String::from_utf8(bytes).expect("payloads are UTF-8");
                        assert!(text.starts_with(&format!("entry-{k}-")));
                    }
                }
            }
        })
    };

    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for handle in maintenance {
        handle.join().unwrap();
    }
    reader.join().unwrap();

    let stats = store.session();
    assert_eq!(stats.corrupt, 0, "clear/gc races must read as plain misses");
    assert_eq!(stats.version_mismatch, 0);
    let _ = std::fs::remove_dir_all(store.root());
}
