//! Properties of the canonical hasher that the cache's correctness rests
//! on: keys must be stable across *representations* of the same content —
//! a PTP surviving a text serialize→parse roundtrip keys identically, and
//! a netlist rebuilt from the same structure (fresh `HashMap`s, fresh
//! allocations, different iteration orders) keys identically.

use proptest::prelude::*;

use warpstl_netlist::{Builder, NetId, Netlist};
use warpstl_programs::generators::{generate_imm, ImmConfig};
use warpstl_programs::serialize::{ptp_from_text, ptp_to_text};
use warpstl_store::{key_netlist, key_ptp, CanonicalHasher};

/// One random gate: `kind` selects the operator, `a`/`b`/`c` pick
/// operands among the already-built nets (mod current count).
type GateSpec = (u8, u8, u8, u8);

fn build_netlist(n_inputs: usize, specs: &[GateSpec]) -> Netlist {
    let mut b = Builder::new("prop");
    let mut nets: Vec<NetId> = (0..n_inputs).map(|i| b.input(&format!("i{i}"))).collect();
    for &(kind, a, bb, c) in specs {
        let pick = |sel: u8| nets[sel as usize % nets.len()];
        let (x, y, z) = (pick(a), pick(bb), pick(c));
        let net = match kind % 9 {
            0 => b.and(x, y),
            1 => b.or(x, y),
            2 => b.nand(x, y),
            3 => b.nor(x, y),
            4 => b.xor(x, y),
            5 => b.xnor(x, y),
            6 => b.not(x),
            7 => b.buf(x),
            _ => b.mux(x, y, z),
        };
        nets.push(net);
    }
    let n_out = nets.len().clamp(1, 4);
    for (k, &net) in nets.iter().rev().take(n_out).enumerate() {
        b.output(&format!("o{k}"), net);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ptp_key_survives_text_roundtrip(
        seed in any::<u64>(),
        sb_count in 1usize..8,
        threads in 1usize..64,
    ) {
        let ptp = generate_imm(&ImmConfig { sb_count, seed, threads });
        let text = ptp_to_text(&ptp);
        let parsed = ptp_from_text(&text).expect("serializer output must parse");
        prop_assert_eq!(key_ptp(&parsed), key_ptp(&ptp));
    }

    #[test]
    fn netlist_key_is_stable_across_rebuilds(
        n_inputs in 2usize..6,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..48,
        ),
    ) {
        // Two independent builds of the same structure carry freshly
        // allocated HashMap metadata (kind_histogram) whose iteration
        // order is unrelated; the canonical key must not see that.
        let a = build_netlist(n_inputs, &specs);
        let b = build_netlist(n_inputs, &specs);
        prop_assert_eq!(key_netlist(&a), key_netlist(&b));
    }

    #[test]
    fn unordered_absorb_is_permutation_invariant(
        items in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
        rotation in any::<usize>(),
    ) {
        // Permuting HashMap-like (key, value) metadata must not change the
        // digest. A rotation exercises arbitrary reorderings without
        // needing a shuffle primitive.
        let mut rotated = items.clone();
        if !rotated.is_empty() {
            let mid = rotation % rotated.len();
            rotated.rotate_left(mid);
        }
        let digest = |list: &[(u64, u64)]| {
            let mut h = CanonicalHasher::new();
            h.absorb_unordered(list.iter(), |h, &(k, v)| {
                h.u64(k);
                h.u64(v);
            });
            h.finish()
        };
        prop_assert_eq!(digest(&rotated), digest(&items));
    }
}
