//! Model-checked invariants for the store's commit protocol. Runs only
//! under `RUSTFLAGS="--cfg warpstl_model"` (see `scripts/check.sh`).
//!
//! The real store talks to a filesystem, so these tests run the protocol
//! over an in-memory directory model where **each fs call is one lock
//! acquisition** — the same granularity the kernel gives the real code,
//! since every syscall is individually atomic but nothing composes. The
//! protocols mirrored here are `store.rs`'s actual ones:
//!
//! - writers stage a temp file and `rename` it over the entry
//!   (`atomic_write`), never write in place;
//! - gc decides an entry is dead from a scan, then **revalidates under
//!   the unlink** — the PR-8 fix. The unfixed scan-then-unlink variant is
//!   seeded here and the checker finds the vanished-entry interleaving
//!   deterministically.
#![cfg(warpstl_model)]

use std::collections::BTreeMap;
use std::sync::Arc;

use warpstl_sync::model::{self, ModelOpts};
use warpstl_sync::Mutex;

/// The directory model: path → contents. One `Mutex` acquisition per
/// operation = one atomic syscall.
#[derive(Default)]
struct ModelFs {
    files: Mutex<BTreeMap<&'static str, &'static str>>,
}

impl ModelFs {
    fn write(&self, path: &'static str, contents: &'static str) {
        self.files.lock().insert(path, contents);
    }

    /// `rename(2)`: atomically replaces `to` with `from`'s contents.
    fn rename(&self, from: &'static str, to: &'static str) {
        let mut files = self.files.lock();
        if let Some(contents) = files.remove(from) {
            files.insert(to, contents);
        }
    }

    fn read(&self, path: &'static str) -> Option<&'static str> {
        self.files.lock().get(path).copied()
    }

    fn unlink(&self, path: &'static str) {
        self.files.lock().remove(path);
    }

    /// Compare-and-unlink: removes `path` only if its contents still
    /// match `expect` — the revalidation the fixed gc does.
    fn unlink_if(&self, path: &'static str, expect: &'static str) {
        let mut files = self.files.lock();
        if files.get(path) == Some(&expect) {
            files.remove(path);
        }
    }
}

const ENTRY: &str = "entry";
const TEMP: &str = ".entry.tmp";

/// The staged-temp-plus-rename writer (`atomic_write`'s shape).
fn atomic_put(fs: &ModelFs, contents: &'static str) {
    fs.write(TEMP, contents);
    fs.rename(TEMP, ENTRY);
}

/// A reader concurrent with the atomic writer sees the old value, the
/// new value, or a miss — never a torn (partial) entry.
#[test]
fn atomic_rename_commit_never_exposes_a_torn_entry() {
    let stats = model::check(|| {
        let fs = Arc::new(ModelFs::default());
        fs.write(ENTRY, "old");
        let writer = {
            let fs = Arc::clone(&fs);
            model::spawn(move || atomic_put(&fs, "new"))
        };
        let reader = {
            let fs = Arc::clone(&fs);
            model::spawn(move || fs.read(ENTRY))
        };
        let seen = reader.join();
        writer.join();
        assert!(
            matches!(seen, Some("old") | Some("new")),
            "torn or vanished entry: {seen:?}"
        );
        assert_eq!(fs.read(ENTRY), Some("new"), "commit must land");
    })
    .expect("rename commit is atomic under every interleaving");
    assert!(stats.complete);
}

/// The seeded bad writer: writing the entry in place, in two steps. The
/// checker finds the torn read the rename protocol exists to prevent.
#[test]
fn seeded_in_place_writer_is_caught_exposing_a_torn_entry() {
    fn racy_program() {
        let fs = Arc::new(ModelFs::default());
        fs.write(ENTRY, "old");
        let writer = {
            let fs = Arc::clone(&fs);
            model::spawn(move || {
                // BUG: header lands before the payload — two separate
                // "syscalls" against the live entry path.
                fs.write(ENTRY, "new-header-only");
                fs.write(ENTRY, "new");
            })
        };
        let reader = {
            let fs = Arc::clone(&fs);
            model::spawn(move || fs.read(ENTRY))
        };
        let seen = reader.join();
        writer.join();
        assert!(
            matches!(seen, Some("old") | Some("new")),
            "torn entry observed: {seen:?}"
        );
    }
    let cx = model::check(racy_program).expect_err("checker must catch the in-place writer");
    assert!(
        cx.message.contains("torn entry"),
        "unexpected counterexample: {cx}"
    );
    // The counterexample replays deterministically.
    let replayed = model::replay(&ModelOpts::default(), &cx.schedule, racy_program)
        .expect_err("schedule must reproduce the torn read");
    assert!(replayed.message.contains("torn entry"));
}

/// The PR-8 gc race, seeded: gc scans, sees a corrupt entry, and unlinks
/// *without revalidating* — racing a writer that just renamed a fresh
/// valid entry over the path. The entry vanishes after a successful put.
#[test]
fn seeded_gc_without_revalidation_is_caught_vanishing_a_fresh_entry() {
    fn racy_program() {
        let fs = Arc::new(ModelFs::default());
        fs.write(ENTRY, "corrupt");
        let gc = {
            let fs = Arc::clone(&fs);
            model::spawn(move || {
                // Scan: the entry is corrupt, mark it for removal.
                if fs.read(ENTRY) == Some("corrupt") {
                    // BUG: unconditional unlink — the writer may have
                    // replaced the entry between the scan and here.
                    fs.unlink(ENTRY);
                }
            })
        };
        let writer = {
            let fs = Arc::clone(&fs);
            model::spawn(move || atomic_put(&fs, "valid"))
        };
        writer.join();
        gc.join();
        // A put that completed must survive a concurrent gc of the *old*
        // corrupt generation.
        assert_eq!(
            fs.read(ENTRY),
            Some("valid"),
            "gc vanished a freshly-written entry"
        );
    }
    let first = model::check(racy_program).expect_err("checker must catch scan-then-unlink gc");
    assert!(
        first.message.contains("vanished"),
        "unexpected counterexample: {first}"
    );
    // Deterministic across runs, and the schedule replays.
    let second = model::check(racy_program).expect_err("still racy");
    assert_eq!(first.schedule, second.schedule);
    let replayed = model::replay(&ModelOpts::default(), &first.schedule, racy_program)
        .expect_err("schedule must reproduce the vanish");
    assert!(replayed.message.contains("vanished"));
}

/// The fixed gc: revalidation under the unlink (compare-and-unlink)
/// closes the window — a concurrent writer's fresh entry always survives.
#[test]
fn gc_with_revalidation_never_vanishes_a_fresh_entry() {
    let stats = model::check(|| {
        let fs = Arc::new(ModelFs::default());
        fs.write(ENTRY, "corrupt");
        let gc = {
            let fs = Arc::clone(&fs);
            model::spawn(move || {
                if fs.read(ENTRY) == Some("corrupt") {
                    // The fix: only remove the generation the scan saw.
                    fs.unlink_if(ENTRY, "corrupt");
                }
            })
        };
        let writer = {
            let fs = Arc::clone(&fs);
            model::spawn(move || atomic_put(&fs, "valid"))
        };
        writer.join();
        gc.join();
        assert_eq!(fs.read(ENTRY), Some("valid"));
    })
    .expect("revalidating gc cannot vanish a committed entry");
    assert!(stats.complete);
}

/// Two writers racing the same entry: last rename wins, and the loser's
/// generation never resurfaces (no vanished-then-corrupt flicker).
#[test]
fn concurrent_writers_commit_one_complete_generation() {
    let stats = model::check(|| {
        let fs = Arc::new(ModelFs::default());
        let writers: Vec<_> = ["gen-a", "gen-b"]
            .into_iter()
            .map(|gen| {
                let fs = Arc::clone(&fs);
                model::spawn(move || atomic_put(&fs, gen))
            })
            .collect();
        for w in writers {
            w.join();
        }
        let last = fs.read(ENTRY);
        assert!(
            matches!(last, Some("gen-a") | Some("gen-b")),
            "entry must hold one complete generation: {last:?}"
        );
    })
    .expect("racing atomic writers always leave one whole entry");
    assert!(stats.complete);
}
