//! The on-disk store: versioned, checksummed entries under one directory.
//!
//! ## Entry format
//!
//! Every entry is one file named `<32-hex key>.<kind extension>`:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "WSTLSTOR"
//! 8       4     format version (u32 LE)            — layout of this header
//! 12      1     entry kind code
//! 13      8     payload length (u64 LE)
//! 21      16    payload checksum (u128 LE)         — canonical hash
//! 37      n     payload
//! ```
//!
//! ## Degradation contract
//!
//! A read that fails **for any reason** — missing file, truncation, bad
//! magic, a format-version bump, a kind mismatch, a checksum mismatch —
//! is a *miss*, never an error: the caller recomputes and overwrites.
//! Reasons are counted separately (session counters + `cache.miss.*` obs
//! counters) so a corrupted cache is visible without being fatal. Writes
//! go through [`atomic_write`] (temp file + rename in the same
//! directory), so a crashed or interrupted process can leave at worst a
//! stale temp file, never a truncated entry.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use warpstl_sync::AtomicU64;

use warpstl_obs::{Obs, ObsExt};

use crate::hash::{CanonicalHasher, Key};
use crate::names;

/// The entry-file magic.
pub const MAGIC: [u8; 8] = *b"WSTLSTOR";

/// The on-disk header layout version. Bump on any header change: old
/// entries then degrade to misses (counted as `version_mismatch`).
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 1 + 8 + 16;

/// The advisory maintenance lock file (see `maintenance_lock`).
const LOCK_FILE: &str = ".warpstl-store.lock";

/// A lock file untouched for this long is presumed abandoned by a crashed
/// holder and broken.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(30);

/// How long an acquirer waits for a live holder before breaking the lock
/// anyway (maintenance must make progress even if a holder hangs).
const LOCK_WAIT_MAX: Duration = Duration::from_secs(10);

/// Temp files younger than this survive [`Store::gc`]: they may belong to
/// an in-flight [`atomic_write`] of a concurrent process, and deleting one
/// mid-write turns that writer's rename into a counted `write_errors`
/// failure. Anything older is an orphan from a crashed writer.
pub const TEMP_MAX_AGE: Duration = Duration::from_secs(3600);

/// What an entry stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A netlist [`AnalyzeReport`](warpstl_analyze::AnalyzeReport).
    Analysis,
    /// One fault-engine invocation's detection stamps and report rows.
    FsimStamps,
}

impl EntryKind {
    /// Every kind, in code order.
    pub const ALL: [EntryKind; 2] = [EntryKind::Analysis, EntryKind::FsimStamps];

    fn code(self) -> u8 {
        match self {
            EntryKind::Analysis => 1,
            EntryKind::FsimStamps => 2,
        }
    }

    fn from_code(code: u8) -> Option<EntryKind> {
        EntryKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Human-readable kind name (CLI output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EntryKind::Analysis => "analysis",
            EntryKind::FsimStamps => "fsim-stamps",
        }
    }

    /// The entry-file extension for this kind.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            EntryKind::Analysis => "ana",
            EntryKind::FsimStamps => "fsr",
        }
    }

    fn from_extension(ext: &str) -> Option<EntryKind> {
        EntryKind::ALL.into_iter().find(|k| k.extension() == ext)
    }
}

/// Why a read missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MissReason {
    /// No entry file (the ordinary cold miss).
    Absent,
    /// Truncated file, bad magic, wrong kind, or checksum mismatch.
    Corrupt,
    /// The header's format version differs from [`FORMAT_VERSION`].
    VersionMismatch,
}

#[derive(Debug, Default)]
struct Session {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    version_mismatch: AtomicU64,
    write_errors: AtomicU64,
}

/// A snapshot of one process's cache traffic (monotonic within the
/// session; independent of the on-disk state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that fell back to recomputation (all reasons).
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Misses caused by corrupt entries (subset of `misses`).
    pub corrupt: u64,
    /// Misses caused by a format-version mismatch (subset of `misses`).
    pub version_mismatch: u64,
    /// Writes that failed at the filesystem (the entry is simply absent).
    pub write_errors: u64,
}

/// The health of one scanned entry file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// Header and checksum verify.
    Valid,
    /// Unreadable, truncated, or checksum-mismatched.
    Corrupt,
    /// Readable but written by a different [`FORMAT_VERSION`].
    VersionMismatch,
}

/// One row of a [`Store::scan`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// The entry file.
    pub path: PathBuf,
    /// The entry's kind (from its extension).
    pub kind: EntryKind,
    /// File size in bytes.
    pub bytes: u64,
    /// Verification result.
    pub status: EntryStatus,
}

/// The result of scanning a cache directory.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Every recognized entry file.
    pub entries: Vec<EntryInfo>,
}

impl ScanReport {
    /// Entries with [`EntryStatus::Valid`].
    #[must_use]
    pub fn valid_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status == EntryStatus::Valid)
            .count()
    }

    /// Entries that would degrade to a miss.
    #[must_use]
    pub fn invalid_count(&self) -> usize {
        self.entries.len() - self.valid_count()
    }

    /// Total bytes across all recognized entries.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// `(valid, bytes)` for one kind.
    #[must_use]
    pub fn kind_summary(&self, kind: EntryKind) -> (usize, u64) {
        self.entries
            .iter()
            .filter(|e| e.kind == kind && e.status == EntryStatus::Valid)
            .fold((0, 0), |(n, b), e| (n + 1, b + e.bytes))
    }
}

/// The persistent content-addressed artifact cache.
///
/// One `Store` owns one directory. It is `Sync`: the pipeline's
/// instance-parallel workers share it by reference. Concurrent writers of
/// the same key are safe — both compute identical content (keys are
/// content hashes) and the atomic rename makes one of the identical files
/// win.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    session: Session,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Store {
            root,
            session: Session::default(),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry file path for `(kind, key)`.
    #[must_use]
    pub fn entry_path(&self, kind: EntryKind, key: Key) -> PathBuf {
        self.root
            .join(format!("{}.{}", key.to_hex(), kind.extension()))
    }

    /// This process's cache-traffic counters so far.
    #[must_use]
    pub fn session(&self) -> SessionStats {
        SessionStats {
            hits: self.session.hits.load(Ordering::Relaxed),
            misses: self.session.misses.load(Ordering::Relaxed),
            writes: self.session.writes.load(Ordering::Relaxed),
            corrupt: self.session.corrupt.load(Ordering::Relaxed),
            version_mismatch: self.session.version_mismatch.load(Ordering::Relaxed),
            write_errors: self.session.write_errors.load(Ordering::Relaxed),
        }
    }

    fn checksum(payload: &[u8]) -> u128 {
        let mut h = CanonicalHasher::new();
        h.str("warpstl.entry/v1");
        h.len(payload.len());
        h.bytes(payload);
        h.finish().0
    }

    /// Serializes a full entry (header + payload) for `kind`.
    #[must_use]
    pub fn encode_entry(kind: EntryKind, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(kind.code());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&Store::checksum(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Reads the little-endian field at `header[at..at + N]`, treating a
    /// short or out-of-range slice as corruption rather than panicking:
    /// entry bytes come straight off disk and are untrusted.
    fn header_field<const N: usize>(header: &[u8], at: usize) -> Result<[u8; N], MissReason> {
        header
            .get(at..at + N)
            .and_then(|s| s.try_into().ok())
            .ok_or(MissReason::Corrupt)
    }

    fn decode_entry(kind: EntryKind, bytes: &[u8]) -> Result<Vec<u8>, MissReason> {
        let header = bytes.get(..HEADER_LEN).ok_or(MissReason::Corrupt)?;
        if header[..8] != MAGIC {
            return Err(MissReason::Corrupt);
        }
        let version = u32::from_le_bytes(Store::header_field(header, 8)?);
        if version != FORMAT_VERSION {
            return Err(MissReason::VersionMismatch);
        }
        if header.get(12).copied().and_then(EntryKind::from_code) != Some(kind) {
            return Err(MissReason::Corrupt);
        }
        let len = u64::from_le_bytes(Store::header_field(header, 13)?);
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != len {
            return Err(MissReason::Corrupt);
        }
        let checksum = u128::from_le_bytes(Store::header_field(header, 21)?);
        if Store::checksum(payload) != checksum {
            return Err(MissReason::Corrupt);
        }
        Ok(payload.to_vec())
    }

    fn note_miss(&self, reason: MissReason, obs: Obs<'_>) {
        self.session.misses.fetch_add(1, Ordering::Relaxed);
        obs.add(names::CACHE_MISS, 1);
        match reason {
            MissReason::Absent => {}
            MissReason::Corrupt => {
                self.session.corrupt.fetch_add(1, Ordering::Relaxed);
                obs.add(names::CACHE_MISS_CORRUPT, 1);
            }
            MissReason::VersionMismatch => {
                self.session
                    .version_mismatch
                    .fetch_add(1, Ordering::Relaxed);
                obs.add(names::CACHE_MISS_VERSION, 1);
            }
        }
    }

    pub(crate) fn note_hit(&self, obs: Obs<'_>) {
        self.session.hits.fetch_add(1, Ordering::Relaxed);
        obs.add(names::CACHE_HIT, 1);
    }

    /// Counts a miss caused by a payload that verified its checksum but
    /// failed typed decoding (possible only across a payload-schema skew).
    pub(crate) fn note_payload_corrupt(&self, obs: Obs<'_>) {
        self.note_miss(MissReason::Corrupt, obs);
    }

    /// Reads and verifies the payload of `(kind, key)`. **Does not** count
    /// a hit — the typed wrappers count it after the payload also decodes,
    /// so accounting stays exact; every failure path is counted here as a
    /// miss with its reason.
    pub(crate) fn get_verified(&self, kind: EntryKind, key: Key, obs: Obs<'_>) -> Option<Vec<u8>> {
        let mut span = obs.span("store", "store.read");
        let path = self.entry_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // Absent covers the concurrent case too: an entry that a
                // parallel `gc`/`clear` unlinked between our existence
                // assumption and this read is a plain miss, never an error.
                self.note_miss(MissReason::Absent, obs);
                return None;
            }
        };
        if obs.enabled() {
            span.arg("bytes", bytes.len());
        }
        match Store::decode_entry(kind, &bytes) {
            Ok(payload) => Some(payload),
            Err(reason) => {
                self.note_miss(reason, obs);
                None
            }
        }
    }

    /// Reads, verifies, and returns the payload of `(kind, key)`, counting
    /// a hit on success and a miss (with its reason) on every failure
    /// path. This is the raw public read surface — the typed wrappers
    /// ([`Store::get_analysis`], [`Store::get_stamps`]) additionally
    /// decode the payload before counting the hit.
    #[must_use]
    pub fn get(&self, kind: EntryKind, key: Key, obs: Obs<'_>) -> Option<Vec<u8>> {
        let payload = self.get_verified(kind, key, obs)?;
        self.note_hit(obs);
        Some(payload)
    }

    /// Writes `(kind, key) -> payload` atomically. A filesystem failure is
    /// counted (`write_errors`, `cache.write.error`) and otherwise
    /// ignored: a cache that cannot persist simply stays cold.
    pub fn put(&self, kind: EntryKind, key: Key, payload: &[u8], obs: Obs<'_>) {
        let mut span = obs.span("store", "store.write");
        if obs.enabled() {
            span.arg("bytes", payload.len());
        }
        let entry = Store::encode_entry(kind, payload);
        match atomic_write(self.entry_path(kind, key), &entry) {
            Ok(()) => {
                self.session.writes.fetch_add(1, Ordering::Relaxed);
                obs.add(names::CACHE_WRITE, 1);
            }
            Err(_) => {
                self.session.write_errors.fetch_add(1, Ordering::Relaxed);
                obs.add(names::CACHE_WRITE_ERROR, 1);
            }
        }
    }

    /// Scans the cache directory, verifying every recognized entry file.
    /// Files without a known extension are ignored (the store never
    /// touches foreign files in a user-supplied directory).
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be listed.
    pub fn scan(&self) -> io::Result<ScanReport> {
        let mut report = ScanReport::default();
        for dent in fs::read_dir(&self.root)? {
            let dent = dent?;
            let path = dent.path();
            if !path.is_file() {
                continue;
            }
            let Some(kind) = path
                .extension()
                .and_then(|e| e.to_str())
                .and_then(EntryKind::from_extension)
            else {
                continue;
            };
            let (bytes, status) = match fs::read(&path) {
                Ok(b) => {
                    let status = match Store::decode_entry(kind, &b) {
                        Ok(_) => EntryStatus::Valid,
                        Err(MissReason::VersionMismatch) => EntryStatus::VersionMismatch,
                        Err(_) => EntryStatus::Corrupt,
                    };
                    (b.len() as u64, status)
                }
                // A file that vanished between `read_dir` and `read` was
                // unlinked by a concurrent `gc`/`clear` — a benign race,
                // not corruption. Anything else (permissions, I/O) is.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => (0, EntryStatus::Corrupt),
            };
            report.entries.push(EntryInfo {
                path,
                kind,
                bytes,
                status,
            });
        }
        report.entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(report)
    }

    /// Removes corrupt and version-mismatched entries plus orphaned temp
    /// files older than [`TEMP_MAX_AGE`], returning
    /// `(removed count, freed bytes)`. Equivalent to
    /// [`Store::gc_with`]`(TEMP_MAX_AGE)`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be listed;
    /// individual unremovable files are skipped.
    pub fn gc(&self) -> io::Result<(usize, u64)> {
        self.gc_with(TEMP_MAX_AGE)
    }

    /// [`Store::gc`] with an explicit temp-file age threshold (tests use
    /// [`Duration::ZERO`] to sweep temps immediately).
    ///
    /// Concurrency: runs under the cross-process advisory maintenance lock, so
    /// two `gc`/`clear` invocations never race each other. Races against
    /// *writers* are handled per file: each invalid entry is re-read
    /// immediately before unlinking in case a concurrent [`Store::put`]
    /// just renamed a fresh valid entry over the stale bytes the scan saw,
    /// and temp files younger than `temp_max_age` are left alone because
    /// they may belong to an in-flight [`atomic_write`].
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be listed or
    /// the lock file cannot be created.
    pub fn gc_with(&self, temp_max_age: Duration) -> io::Result<(usize, u64)> {
        let _lock = maintenance_lock(&self.root)?;
        let scan = self.scan()?;
        let mut removed = 0;
        let mut freed = 0;
        for entry in &scan.entries {
            if entry.status == EntryStatus::Valid {
                continue;
            }
            // Revalidate at the last moment: the scan's verdict may be
            // stale if a writer renamed a valid entry here since.
            let still_invalid = match fs::read(&entry.path) {
                Ok(b) => Store::decode_entry(entry.kind, &b).is_err(),
                Err(e) if e.kind() == io::ErrorKind::NotFound => false,
                Err(_) => true,
            };
            if still_invalid && fs::remove_file(&entry.path).is_ok() {
                removed += 1;
                freed += entry.bytes;
            }
        }
        for (path, bytes) in stale_temp_files(&self.root, temp_max_age)? {
            if fs::remove_file(&path).is_ok() {
                removed += 1;
                freed += bytes;
            }
        }
        Ok((removed, freed))
    }

    /// Removes **every** recognized entry (foreign files survive),
    /// returning the removed count. Takes the cross-process
    /// advisory maintenance lock, like [`Store::gc`].
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be listed or
    /// the lock file cannot be created.
    pub fn clear(&self) -> io::Result<usize> {
        let _lock = maintenance_lock(&self.root)?;
        let scan = self.scan()?;
        let mut removed = 0;
        for entry in &scan.entries {
            if fs::remove_file(&entry.path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Holds the advisory maintenance lock; dropping it removes the lock file.
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Acquires the cross-process advisory lock serializing store maintenance
/// (`gc`/`clear`) within one cache directory. The lock is a file created
/// with `create_new` — the one portable atomic primitive — holding the
/// owner's pid for post-mortem debugging. Liveness beats strictness: a
/// lock file older than [`LOCK_STALE_AFTER`] is presumed abandoned by a
/// crashed holder and broken, and an acquirer that has waited
/// [`LOCK_WAIT_MAX`] breaks the lock regardless (a wedged gc must not
/// wedge every other process forever). Readers and writers never take
/// this lock — their safety comes from atomic rename, not exclusion.
fn maintenance_lock(root: &Path) -> io::Result<LockGuard> {
    use std::io::Write as _;
    let path = root.join(LOCK_FILE);
    let start = Instant::now();
    loop {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = write!(file, "{}", std::process::id());
                return Ok(LockGuard { path });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age > LOCK_STALE_AFTER);
                if stale || start.elapsed() > LOCK_WAIT_MAX {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Lists temp files (the `.{name}.tmp.{pid}.{seq}` spellings of
/// [`atomic_write`]) in `root` older than `max_age`, with their sizes.
fn stale_temp_files(root: &Path, max_age: Duration) -> io::Result<Vec<(PathBuf, u64)>> {
    let mut stale = Vec::new();
    for dent in fs::read_dir(root)? {
        let dent = dent?;
        let path = dent.path();
        let is_temp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with('.') && n.contains(".tmp."));
        if !is_temp || !path.is_file() {
            continue;
        }
        let Ok(meta) = fs::metadata(&path) else {
            continue; // vanished mid-scan: its writer finished the rename
        };
        let old_enough = meta
            .modified()
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= max_age);
        if old_enough {
            stale.push((path, meta.len()));
        }
    }
    stale.sort();
    Ok(stale)
}

/// Writes `bytes` to `path` atomically: the content lands in a temp file
/// in the same directory and is renamed over the target, so readers (and
/// interrupted writers) never observe a partially-written file. The shared
/// helper behind every JSON/report artifact the toolkit writes.
///
/// # Errors
///
/// Returns the underlying error from the write or the rename (the temp
/// file is cleaned up on a failed rename).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_obs::Recorder;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("warpstl-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn get_raw(store: &Store, kind: EntryKind, key: Key, obs: Obs<'_>) -> Option<Vec<u8>> {
        store.get(kind, key, obs)
    }

    #[test]
    fn round_trip_and_session_counters() {
        let store = temp_store("roundtrip");
        let key = Key(42);
        assert_eq!(get_raw(&store, EntryKind::Analysis, key, None), None);
        store.put(EntryKind::Analysis, key, b"hello", None);
        assert_eq!(
            get_raw(&store, EntryKind::Analysis, key, None).as_deref(),
            Some(b"hello".as_slice())
        );
        // Kinds are separate namespaces even for equal keys.
        assert_eq!(get_raw(&store, EntryKind::FsimStamps, key, None), None);
        let s = store.session();
        assert_eq!((s.hits, s.misses, s.writes), (1, 2, 1));
        assert_eq!(s.corrupt, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_entry_degrades_to_miss() {
        let store = temp_store("truncate");
        let key = Key(7);
        store.put(EntryKind::FsimStamps, key, b"payload-bytes", None);
        let path = store.entry_path(EntryKind::FsimStamps, key);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();

        let rec = Recorder::new();
        assert_eq!(
            get_raw(&store, EntryKind::FsimStamps, key, Some(&rec)),
            None
        );
        let s = store.session();
        assert_eq!(s.corrupt, 1);
        assert_eq!(rec.metrics().counter(names::CACHE_MISS), 1);
        assert_eq!(rec.metrics().counter(names::CACHE_MISS_CORRUPT), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_kind_byte_degrades_to_miss() {
        let store = temp_store("kindbyte");
        let key = Key(8);
        store.put(EntryKind::Analysis, key, b"payload", None);
        let path = store.entry_path(EntryKind::Analysis, key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] = 0xee; // no EntryKind has this code
        fs::write(&path, &bytes).unwrap();
        assert_eq!(get_raw(&store, EntryKind::Analysis, key, None), None);
        assert_eq!(store.session().corrupt, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn file_shorter_than_the_header_degrades_to_miss() {
        let store = temp_store("shorthdr");
        let key = Key(10);
        store.put(EntryKind::Analysis, key, b"payload", None);
        let path = store.entry_path(EntryKind::Analysis, key);
        // Keep only the magic: every header field read is out of range.
        fs::write(&path, &MAGIC[..]).unwrap();
        assert_eq!(get_raw(&store, EntryKind::Analysis, key, None), None);
        assert_eq!(store.session().corrupt, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn flipped_checksum_byte_degrades_to_miss() {
        let store = temp_store("checksum");
        let key = Key(9);
        store.put(EntryKind::Analysis, key, b"payload", None);
        let path = store.entry_path(EntryKind::Analysis, key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[22] ^= 0xff; // inside the stored checksum field
        fs::write(&path, &bytes).unwrap();
        assert_eq!(get_raw(&store, EntryKind::Analysis, key, None), None);
        assert_eq!(store.session().corrupt, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn version_bump_degrades_to_miss_and_gc_reclaims() {
        let store = temp_store("version");
        let key = Key(11);
        store.put(EntryKind::Analysis, key, b"payload", None);
        let path = store.entry_path(EntryKind::Analysis, key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();

        let rec = Recorder::new();
        assert_eq!(get_raw(&store, EntryKind::Analysis, key, Some(&rec)), None);
        let s = store.session();
        assert_eq!(s.version_mismatch, 1);
        assert_eq!(s.corrupt, 0);
        assert_eq!(rec.metrics().counter(names::CACHE_MISS_VERSION), 1);

        let scan = store.scan().unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].status, EntryStatus::VersionMismatch);
        let (removed, freed) = store.gc().unwrap();
        assert_eq!(removed, 1);
        assert!(freed > 0);
        assert_eq!(store.scan().unwrap().entries.len(), 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn scan_ignores_foreign_files_and_clear_spares_them() {
        let store = temp_store("foreign");
        store.put(EntryKind::Analysis, Key(1), b"a", None);
        store.put(EntryKind::FsimStamps, Key(2), b"b", None);
        let foreign = store.root().join("README.txt");
        fs::write(&foreign, "not an entry").unwrap();

        let scan = store.scan().unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.valid_count(), 2);
        assert_eq!(scan.kind_summary(EntryKind::Analysis).0, 1);
        assert_eq!(scan.kind_summary(EntryKind::FsimStamps).0, 1);
        assert!(scan.total_bytes() > 0);

        assert_eq!(store.clear().unwrap(), 2);
        assert!(foreign.exists(), "clear must not delete foreign files");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_sweeps_old_temps_but_spares_fresh_ones_by_default() {
        let store = temp_store("gc-temps");
        store.put(EntryKind::Analysis, Key(1), b"keep", None);
        let temp = store.root().join(".orphan.ana.tmp.12345.0");
        fs::write(&temp, b"half-written").unwrap();

        // Default threshold: the just-created temp is presumed in-flight.
        let (removed, _) = store.gc().unwrap();
        assert_eq!(removed, 0);
        assert!(temp.exists());

        // Zero threshold: the temp is an orphan and is reclaimed.
        let (removed, freed) = store.gc_with(Duration::ZERO).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(freed, b"half-written".len() as u64);
        assert!(!temp.exists());

        // The valid entry survived both passes, and the lock was released.
        assert_eq!(store.scan().unwrap().valid_count(), 1);
        assert!(!store.root().join(LOCK_FILE).exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_blocks_on_a_held_maintenance_lock() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let store = Arc::new(temp_store("gc-lock"));
        let lock_path = store.root().join(LOCK_FILE);
        fs::write(&lock_path, "held-by-test").unwrap();

        let done = Arc::new(AtomicBool::new(false));
        let handle = {
            let (store, done) = (Arc::clone(&store), Arc::clone(&done));
            std::thread::spawn(move || {
                let result = store.gc();
                done.store(true, Ordering::SeqCst);
                result
            })
        };

        // A freshly-created lock is honored: gc must still be waiting.
        std::thread::sleep(Duration::from_millis(100));
        assert!(!done.load(Ordering::SeqCst), "gc ignored a live lock");

        fs::remove_file(&lock_path).unwrap();
        handle.join().unwrap().unwrap();
        assert!(done.load(Ordering::SeqCst));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("warpstl-aw-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        atomic_write(&target, b"first").unwrap();
        atomic_write(&target, b"second").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|d| d.ok())
            .filter(|d| d.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
