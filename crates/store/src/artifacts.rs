//! Typed cache artifacts and the cached compute wrappers.
//!
//! Two artifact kinds are persisted:
//!
//! - **Analysis** — a netlist's [`AnalyzeReport`], keyed by the netlist
//!   alone ([`key_analysis`]).
//! - **Fsim stamps** — everything one fault-engine invocation produced:
//!   the per-pattern report rows, the individual detection events, and the
//!   *fault-list delta* (which faults flipped to detected, and where).
//!   Keyed by [`key_fsim`], which absorbs the entry
//!   fault-list state, so replaying the delta onto a list in that same
//!   state is bit-exact with re-running the engine.
//!
//! The wrappers [`cached_analyze`] and [`cached_fault_sim`] are the whole
//! integration surface for the pipeline: call them where `analyze_observed`
//! / `fault_simulate_guided` used to be called, with an optional store.

use warpstl_analyze::{
    analyze_observed, AnalyzeReport, Diagnostic, ImplicationStats, Rule, Severity,
};
use warpstl_fault::{
    bridge_simulate_observed, fault_simulate_guided, BridgeList, FaultList, FaultSimConfig,
    FaultSimReport, FaultStatus, SimGuide,
};
use warpstl_netlist::{NetId, Netlist, PatternSeq};
use warpstl_obs::{Obs, ObsExt};

use crate::codec::{ByteReader, ByteWriter};
use crate::hash::{key_analysis, key_bridge_sim, key_fsim, Key};
use crate::store::{EntryKind, Store};

/// The persisted result of one fault-engine invocation.
///
/// `list_updates` is the list *delta*, not the list: diffing detection
/// flags before/after the engine call captures every fault the run flipped
/// — including faults a dominance view marked by inheritance, which never
/// surface as report detection events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsimStamps {
    /// Per-pattern `(cc, activated, detected)` report rows, in order.
    pub patterns: Vec<(u64, u32, u32)>,
    /// Individual `(fault, cc, pattern)` detection events of the report.
    pub report_detections: Vec<(usize, u64, usize)>,
    /// Faults the run newly detected: `(fault, cc, pattern)` stamps to
    /// replay onto the fault list.
    pub list_updates: Vec<(usize, u64, usize)>,
    /// Target faults the run pruned as statically untestable (the
    /// report's untestable row).
    pub untestable: u32,
}

impl FsimStamps {
    /// Serializes into a cache payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.write_len(self.patterns.len());
        for &(cc, activated, detected) in &self.patterns {
            w.u64(cc);
            w.u32(activated);
            w.u32(detected);
        }
        w.write_len(self.report_detections.len());
        for &(fault, cc, pattern) in &self.report_detections {
            w.write_len(fault);
            w.u64(cc);
            w.write_len(pattern);
        }
        w.write_len(self.list_updates.len());
        for &(fault, cc, pattern) in &self.list_updates {
            w.write_len(fault);
            w.u64(cc);
            w.write_len(pattern);
        }
        w.u32(self.untestable);
        w.into_bytes()
    }

    /// Deserializes a cache payload; `None` on any malformation.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<FsimStamps> {
        fn triples(r: &mut ByteReader<'_>) -> Option<Vec<(usize, u64, usize)>> {
            let n = r.read_len()?;
            if n > r.remaining() {
                return None; // each triple is ≥ 24 bytes; reject absurd counts
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push((r.read_len()?, r.u64()?, r.read_len()?));
            }
            Some(out)
        }
        let mut r = ByteReader::new(bytes);
        let n = r.read_len()?;
        if n > r.remaining() {
            return None;
        }
        let mut patterns = Vec::with_capacity(n);
        for _ in 0..n {
            patterns.push((r.u64()?, r.u32()?, r.u32()?));
        }
        let report_detections = triples(&mut r)?;
        let list_updates = triples(&mut r)?;
        let untestable = r.u32()?;
        r.at_end().then_some(FsimStamps {
            patterns,
            report_detections,
            list_updates,
            untestable,
        })
    }

    /// Whether every fault id referenced is below `fault_count` (replay
    /// over the wrong list would otherwise index out of bounds).
    #[must_use]
    pub fn bounded_by(&self, fault_count: usize) -> bool {
        self.report_detections
            .iter()
            .chain(&self.list_updates)
            .all(|&(fault, _, _)| fault < fault_count)
    }

    /// Captures the stamps of a just-finished engine run from its report
    /// and the list's detection flags `before` the run (see
    /// [`detection_flags`]). Generic over the ledger's fault type: stamps
    /// carry only ids, so stuck-at and bridging runs share the codec (their
    /// keys are domain-separated by the model tag).
    #[must_use]
    pub fn capture<F>(report: &FaultSimReport, list: &FaultList<F>, before: &[bool]) -> FsimStamps {
        let patterns = report
            .patterns()
            .iter()
            .map(|p| (p.cc, p.activated, p.detected))
            .collect();
        let report_detections = report.detections().to_vec();
        let list_updates = list
            .detected()
            .filter(|&(id, _, _, _)| !before.get(id).copied().unwrap_or(false))
            .map(|(id, cc, pattern, _)| (id, cc, pattern))
            .collect();
        FsimStamps {
            patterns,
            report_detections,
            list_updates,
            untestable: report.untestable_count(),
        }
    }

    /// Replays the stamps: starts a new run on `list`, applies the
    /// detection stamps, and rebuilds the engine's report. Equivalent to
    /// re-running the engine from the same entry list state.
    #[must_use]
    pub fn replay<F>(&self, list: &mut FaultList<F>) -> FaultSimReport {
        list.begin_run();
        for &(fault, cc, pattern) in &self.list_updates {
            list.mark_detected(fault, cc, pattern);
        }
        let mut report = FaultSimReport::new();
        for &(cc, activated, detected) in &self.patterns {
            report.record_pattern(cc, activated, detected);
        }
        for &(fault, cc, pattern) in &self.report_detections {
            report.record_detection(fault, cc, pattern);
        }
        report.set_untestable(self.untestable);
        report
    }
}

/// Snapshot of a list's detection flags, indexed by fault id — taken
/// before an engine run so [`FsimStamps::capture`] can diff.
#[must_use]
pub fn detection_flags<F>(list: &FaultList<F>) -> Vec<bool> {
    (0..list.len())
        .map(|id| matches!(list.status(id), FaultStatus::Detected { .. }))
        .collect()
}

fn encode_analysis(report: &AnalyzeReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&report.name);
    w.write_len(report.gates);
    w.write_len(report.implications.edges);
    w.write_len(report.implications.impossible);
    w.write_len(report.implications.untestable);
    w.write_len(report.implications.merges);
    w.write_len(report.diagnostics.len());
    for d in &report.diagnostics {
        w.u8(d.rule.index() as u8);
        w.u8(match d.severity {
            Severity::Warning => 0,
            Severity::Error => 1,
        });
        match d.net {
            Some(net) => {
                w.u8(1);
                w.u32(net.0);
            }
            None => w.u8(0),
        }
        w.str(&d.message);
    }
    w.into_bytes()
}

fn decode_analysis(bytes: &[u8]) -> Option<AnalyzeReport> {
    let mut r = ByteReader::new(bytes);
    let name = r.str()?;
    let gates = r.read_len()?;
    let implications = ImplicationStats {
        edges: r.read_len()?,
        impossible: r.read_len()?,
        untestable: r.read_len()?,
        merges: r.read_len()?,
    };
    let n = r.read_len()?;
    if n > r.remaining() {
        return None;
    }
    let mut diagnostics = Vec::with_capacity(n);
    for _ in 0..n {
        let rule = *Rule::ALL.get(usize::from(r.u8()?))?;
        let severity = match r.u8()? {
            0 => Severity::Warning,
            1 => Severity::Error,
            _ => return None,
        };
        let net = match r.u8()? {
            0 => None,
            1 => Some(NetId(r.u32()?)),
            _ => return None,
        };
        let message = r.str()?;
        diagnostics.push(Diagnostic {
            rule,
            severity,
            net,
            message,
        });
    }
    r.at_end().then_some(AnalyzeReport {
        name,
        gates,
        diagnostics,
        implications,
    })
}

impl Store {
    /// Looks up a cached [`AnalyzeReport`]; counts a hit only when the
    /// payload also decodes (a checksum-valid payload that fails typed
    /// decoding — payload-schema skew — is demoted to a corrupt miss).
    #[must_use]
    pub fn get_analysis(&self, key: Key, obs: Obs<'_>) -> Option<AnalyzeReport> {
        let payload = self.get_verified(EntryKind::Analysis, key, obs)?;
        match decode_analysis(&payload) {
            Some(report) => {
                self.note_hit(obs);
                Some(report)
            }
            None => {
                self.note_payload_corrupt(obs);
                None
            }
        }
    }

    /// Persists an [`AnalyzeReport`] under `key`.
    pub fn put_analysis(&self, key: Key, report: &AnalyzeReport, obs: Obs<'_>) {
        self.put(EntryKind::Analysis, key, &encode_analysis(report), obs);
    }

    /// Looks up cached fsim stamps; `fault_count` bounds the fault ids a
    /// valid entry may reference (out-of-range entries are demoted to
    /// corrupt misses rather than trusted into a replay).
    #[must_use]
    pub fn get_stamps(&self, key: Key, fault_count: usize, obs: Obs<'_>) -> Option<FsimStamps> {
        let payload = self.get_verified(EntryKind::FsimStamps, key, obs)?;
        match FsimStamps::decode(&payload).filter(|s| s.bounded_by(fault_count)) {
            Some(stamps) => {
                self.note_hit(obs);
                Some(stamps)
            }
            None => {
                self.note_payload_corrupt(obs);
                None
            }
        }
    }

    /// Persists fsim stamps under `key`.
    pub fn put_stamps(&self, key: Key, stamps: &FsimStamps, obs: Obs<'_>) {
        self.put(EntryKind::FsimStamps, key, &stamps.encode(), obs);
    }
}

/// The cache handle threaded through the pipeline: an optional store plus
/// the netlist key every per-module artifact key derives from (computed
/// once per module, not once per lookup).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCtx<'a> {
    /// The store, when caching is enabled.
    pub store: Option<&'a Store>,
    /// [`key_netlist`](crate::hash::key_netlist) of the module's netlist.
    pub netlist_key: Key,
}

impl<'a> CacheCtx<'a> {
    /// A context with caching off: every lookup misses silently (no
    /// counters), every write is skipped.
    #[must_use]
    pub fn disabled() -> CacheCtx<'a> {
        CacheCtx::default()
    }
}

/// [`analyze_observed`] behind the cache: returns the lint report from the
/// store when present, else analyzes and persists. SCOAP scores are not
/// cached — the pipeline consumes only the report.
#[must_use]
pub fn cached_analyze(
    store: Option<&Store>,
    netlist_key: Key,
    netlist: &Netlist,
    obs: Obs<'_>,
) -> AnalyzeReport {
    let key = key_analysis(netlist_key);
    if let Some(store) = store {
        if let Some(report) = store.get_analysis(key, obs) {
            return report;
        }
    }
    let report = analyze_observed(netlist, obs).report;
    if let Some(store) = store {
        store.put_analysis(key, &report, obs);
    }
    report
}

/// [`fault_simulate_guided`] behind the cache.
///
/// On a hit the persisted stamps are replayed onto `list` (new run,
/// detection stamps, rebuilt report) under a `store.replay` span — the
/// result is bit-identical to re-running the engine from the same entry
/// state, because the key absorbs that state. On a miss the engine runs
/// and its stamps are captured and persisted.
pub fn cached_fault_sim(
    cache: CacheCtx<'_>,
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
    obs: Obs<'_>,
    guide: &SimGuide<'_>,
) -> FaultSimReport {
    let Some(store) = cache.store else {
        return fault_simulate_guided(netlist, patterns, list, config, obs, guide);
    };
    let key = key_fsim(cache.netlist_key, patterns, list, config, guide);
    if let Some(stamps) = store.get_stamps(key, list.len(), obs) {
        let _span = obs.span("store", "store.replay");
        return stamps.replay(list);
    }
    let before = detection_flags(list);
    let report = fault_simulate_guided(netlist, patterns, list, config, obs, guide);
    store.put_stamps(key, &FsimStamps::capture(&report, list, &before), obs);
    report
}

/// [`bridge_simulate_observed`] behind the cache — the bridging twin of
/// [`cached_fault_sim`]. The key ([`key_bridge_sim`]) absorbs the sampled
/// universe content alongside the entry list state, so entries can never
/// alias across models, seeds, or pair budgets; stamps replay through the
/// same [`FsimStamps`] machinery (the payload carries only fault ids).
pub fn cached_bridge_sim(
    cache: CacheCtx<'_>,
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut BridgeList,
    config: &FaultSimConfig,
    obs: Obs<'_>,
) -> FaultSimReport {
    let Some(store) = cache.store else {
        return bridge_simulate_observed(netlist, patterns, list, config, obs);
    };
    let key = key_bridge_sim(cache.netlist_key, patterns, list, config);
    if let Some(stamps) = store.get_stamps(key, list.len(), obs) {
        let _span = obs.span("store", "store.replay");
        return stamps.replay(list);
    }
    let before = detection_flags(list);
    let report = bridge_simulate_observed(netlist, patterns, list, config, obs);
    store.put_stamps(key, &FsimStamps::capture(&report, list, &before), obs);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_fault::FaultUniverse;
    use warpstl_netlist::Builder;
    use warpstl_obs::{names, Recorder};

    fn build_netlist() -> Netlist {
        let mut b = Builder::new("cache_t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let a = b.and(x, y);
        let o = b.xor(a, z);
        let n = b.not(o);
        b.output("o", o);
        b.output("n", n);
        b.finish()
    }

    fn patterns_for(netlist: &Netlist, rows: usize) -> PatternSeq {
        let width = netlist.inputs().width();
        let mut seq = PatternSeq::new(width);
        let mut state = 0x9e37_79b9_u64;
        for i in 0..rows {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push_value(10 + i as u64, state);
        }
        seq
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "warpstl-artifacts-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn stamps_codec_round_trips() {
        let stamps = FsimStamps {
            patterns: vec![(10, 4, 1), (11, 0, 0)],
            report_detections: vec![(3, 10, 0)],
            list_updates: vec![(3, 10, 0), (5, 11, 1)],
            untestable: 2,
        };
        let decoded = FsimStamps::decode(&stamps.encode()).unwrap();
        assert_eq!(decoded, stamps);
        assert!(decoded.bounded_by(6));
        assert!(!decoded.bounded_by(5));
        // Truncated payloads decode to None, never panic.
        let bytes = stamps.encode();
        for cut in 0..bytes.len() {
            assert_eq!(FsimStamps::decode(&bytes[..cut]), None);
        }
    }

    #[test]
    fn analysis_codec_round_trips() {
        let report = AnalyzeReport {
            name: "m".into(),
            gates: 12,
            diagnostics: vec![
                Diagnostic {
                    rule: Rule::UndrivenNet,
                    severity: Severity::Error,
                    net: Some(NetId(4)),
                    message: "net n4 has no driver".into(),
                },
                Diagnostic {
                    rule: Rule::DeadLogic,
                    severity: Severity::Warning,
                    net: None,
                    message: "constant cone".into(),
                },
            ],
            implications: ImplicationStats {
                edges: 40,
                impossible: 2,
                untestable: 6,
                merges: 1,
            },
        };
        let decoded = decode_analysis(&encode_analysis(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn cached_fault_sim_warm_replay_is_bit_identical() {
        let netlist = build_netlist();
        let universe = FaultUniverse::enumerate(&netlist);
        let patterns = patterns_for(&netlist, 6);
        let config = FaultSimConfig::default();
        let guide = SimGuide::default();
        let store = temp_store("warm");
        let cache = CacheCtx {
            store: Some(&store),
            netlist_key: crate::hash::key_netlist(&netlist),
        };

        let mut cold_list = FaultList::new(&universe);
        let cold = cached_fault_sim(
            cache,
            &netlist,
            &patterns,
            &mut cold_list,
            &config,
            None,
            &guide,
        );

        let rec = Recorder::new();
        let mut warm_list = FaultList::new(&universe);
        let warm = cached_fault_sim(
            cache,
            &netlist,
            &patterns,
            &mut warm_list,
            &config,
            Some(&rec),
            &guide,
        );
        assert_eq!(warm, cold);
        assert_eq!(warm_list.to_report_text(), cold_list.to_report_text());
        assert_eq!(rec.metrics().counter(names::CACHE_HIT), 1);
        assert!(rec.spans().iter().any(|s| s.name == "store.replay"));

        // A different entry list state (one fault pre-detected) keys
        // differently and misses.
        let rec2 = Recorder::new();
        let mut other_list = FaultList::new(&universe);
        other_list.begin_run();
        other_list.mark_detected(0, 1, 0);
        let _ = cached_fault_sim(
            cache,
            &netlist,
            &patterns,
            &mut other_list,
            &config,
            Some(&rec2),
            &guide,
        );
        assert_eq!(rec2.metrics().counter(names::CACHE_MISS), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn fsim_cache_replays_across_backends() {
        use warpstl_fault::SimBackend;
        let netlist = build_netlist();
        let universe = FaultUniverse::enumerate(&netlist);
        let patterns = patterns_for(&netlist, 6);
        let guide = SimGuide::default();
        let store = temp_store("backend");
        let cache = CacheCtx {
            store: Some(&store),
            netlist_key: crate::hash::key_netlist(&netlist),
        };

        // Cold write through the event path...
        let mut cold_list = FaultList::new(&universe);
        let cold = cached_fault_sim(
            cache,
            &netlist,
            &patterns,
            &mut cold_list,
            &FaultSimConfig {
                backend: SimBackend::Event,
                ..FaultSimConfig::default()
            },
            None,
            &guide,
        );

        // ...replays byte-identically under the kernel: the backend is not
        // part of the key, and the engines agree bit-for-bit.
        let rec = Recorder::new();
        let mut warm_list = FaultList::new(&universe);
        let warm = cached_fault_sim(
            cache,
            &netlist,
            &patterns,
            &mut warm_list,
            &FaultSimConfig {
                backend: SimBackend::Kernel,
                ..FaultSimConfig::default()
            },
            Some(&rec),
            &guide,
        );
        assert_eq!(rec.metrics().counter(names::CACHE_HIT), 1);
        assert_eq!(warm, cold);
        assert_eq!(warm_list.to_report_text(), cold_list.to_report_text());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn cached_bridge_sim_warm_replay_is_bit_identical() {
        use warpstl_fault::{BridgeConfig, BridgeUniverse};
        let netlist = build_netlist();
        let universe = BridgeUniverse::sample(&netlist, &BridgeConfig::default());
        assert!(!universe.is_empty());
        let patterns = patterns_for(&netlist, 6);
        let config = FaultSimConfig::default();
        let store = temp_store("bridge-warm");
        let cache = CacheCtx {
            store: Some(&store),
            netlist_key: crate::hash::key_netlist(&netlist),
        };

        let mut cold_list = universe.new_list();
        let cold = cached_bridge_sim(cache, &netlist, &patterns, &mut cold_list, &config, None);

        let rec = Recorder::new();
        let mut warm_list = universe.new_list();
        let warm = cached_bridge_sim(
            cache,
            &netlist,
            &patterns,
            &mut warm_list,
            &config,
            Some(&rec),
        );
        assert_eq!(warm, cold);
        assert_eq!(warm_list.to_report_text(), cold_list.to_report_text());
        assert_eq!(rec.metrics().counter(names::CACHE_HIT), 1);

        // A stuck-at run over the same netlist/patterns/config must miss:
        // the model tag domain-separates the key spaces.
        let sa_universe = FaultUniverse::enumerate(&netlist);
        let rec2 = Recorder::new();
        let mut sa_list = FaultList::new(&sa_universe);
        let _ = cached_fault_sim(
            cache,
            &netlist,
            &patterns,
            &mut sa_list,
            &config,
            Some(&rec2),
            &SimGuide::default(),
        );
        assert_eq!(rec2.metrics().counter(names::CACHE_MISS), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn cached_analyze_hits_and_survives_corruption() {
        let netlist = build_netlist();
        let key = crate::hash::key_netlist(&netlist);
        let store = temp_store("analyze");

        let cold = cached_analyze(Some(&store), key, &netlist, None);
        let rec = Recorder::new();
        let warm = cached_analyze(Some(&store), key, &netlist, Some(&rec));
        assert_eq!(warm, cold);
        assert_eq!(rec.metrics().counter(names::CACHE_HIT), 1);

        // Corrupt the entry: the next lookup recomputes identically.
        let path = store.entry_path(EntryKind::Analysis, key_analysis(key));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Recorder::new();
        let recovered = cached_analyze(Some(&store), key, &netlist, Some(&rec));
        assert_eq!(recovered, cold);
        assert_eq!(rec.metrics().counter(names::CACHE_MISS_CORRUPT), 1);
        // ... and the recompute rewrote a valid entry.
        let rec = Recorder::new();
        let rewarm = cached_analyze(Some(&store), key, &netlist, Some(&rec));
        assert_eq!(rewarm, cold);
        assert_eq!(rec.metrics().counter(names::CACHE_HIT), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn disabled_cache_is_transparent() {
        let netlist = build_netlist();
        let universe = FaultUniverse::enumerate(&netlist);
        let patterns = patterns_for(&netlist, 4);
        let config = FaultSimConfig::default();
        let guide = SimGuide::default();

        let mut direct_list = FaultList::new(&universe);
        let direct =
            fault_simulate_guided(&netlist, &patterns, &mut direct_list, &config, None, &guide);
        let mut cached_list = FaultList::new(&universe);
        let cached = cached_fault_sim(
            CacheCtx::disabled(),
            &netlist,
            &patterns,
            &mut cached_list,
            &config,
            None,
            &guide,
        );
        assert_eq!(cached, direct);
        assert_eq!(cached_list.to_report_text(), direct_list.to_report_text());
    }

    #[test]
    fn out_of_bounds_stamps_demote_to_corrupt_miss() {
        let store = temp_store("bounds");
        let key = Key(5);
        let stamps = FsimStamps {
            patterns: vec![(1, 1, 1)],
            report_detections: vec![],
            list_updates: vec![(99, 1, 0)],
            untestable: 0,
        };
        store.put_stamps(key, &stamps, None);
        let rec = Recorder::new();
        assert_eq!(store.get_stamps(key, 10, Some(&rec)), None);
        assert_eq!(rec.metrics().counter(names::CACHE_MISS_CORRUPT), 1);
        // With a large enough universe the same entry is valid.
        assert_eq!(store.get_stamps(key, 100, None), Some(stamps));
        let _ = std::fs::remove_dir_all(store.root());
    }
}
