//! A minimal little-endian binary codec for cache payloads.
//!
//! The build environment has no serde, so artifact payloads are encoded by
//! hand, mirroring the house style of the text serializers in
//! `warpstl-programs`. Decoding is total: every read returns `Option` and
//! `None` bubbles up as a cache miss, never a panic — the store treats any
//! malformed payload as absent.

/// Append-only payload writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn write_len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.write_len(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// The finished payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style payload reader; every accessor returns `None` on underrun
/// or malformed data.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data` positioned at the start.
    #[must_use]
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn read_len(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let n = self.read_len()?;
        // Guard absurd lengths before allocating.
        if n > self.remaining() {
            return None;
        }
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    /// Bytes left unread.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the reader consumed the whole payload (decoders call this
    /// last, so trailing garbage is rejected).
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        w.write_len(42);
        w.str("héllo");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.u128(), Some(0x0123_4567_89ab_cdef_0011_2233_4455_6677));
        assert_eq!(r.read_len(), Some(42));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert!(r.at_end());
    }

    #[test]
    fn underrun_returns_none_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u32(), None);
        let mut r = ByteReader::new(&[]);
        assert_eq!(r.u8(), None);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn oversized_string_length_is_rejected() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // ludicrous length prefix
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.write_len(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str(), None);
    }
}
