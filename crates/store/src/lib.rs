#![warn(missing_docs)]
//! # warpstl-store
//!
//! A persistent, **content-addressed artifact cache** for incremental STL
//! compaction. The paper's economy is "one logic simulation and one fault
//! simulation per PTP"; this crate extends it across invocations — when
//! the netlist, PTP encoding, fault-sim config, and entry fault-list state
//! are byte-identical to a prior run, the pipeline replays persisted
//! detection stamps instead of re-simulating, so re-compacting an STL
//! where only one PTP changed pays only for that PTP.
//!
//! The crate has four parts:
//!
//! - [`hash`] — a deterministic canonical hasher producing stable 128-bit
//!   [`Key`]s over netlist structure, PTP text encoding, pattern streams,
//!   fault-list state, and [`FaultSimConfig`](warpstl_fault::FaultSimConfig)
//!   — independent of `HashMap` iteration order, pointer values, and
//!   thread count.
//! - [`codec`] — a minimal little-endian payload codec (the build has no
//!   serde); decoding is total, so malformed payloads become misses.
//! - [`store`] — the on-disk store: versioned, checksummed entries written
//!   atomically (temp file + rename), with per-session traffic counters
//!   and scan/gc/clear maintenance. Corrupt or version-mismatched entries
//!   degrade to misses, never errors.
//! - [`artifacts`] — the typed artifacts (analysis reports, fault-sim
//!   stamps) and the [`cached_analyze`] / [`cached_fault_sim`] wrappers
//!   the pipeline calls in place of the raw compute functions.
//!
//! # Examples
//!
//! ```
//! use warpstl_fault::{FaultList, FaultSimConfig, FaultUniverse, SimGuide};
//! use warpstl_netlist::{Builder, PatternSeq};
//! use warpstl_store::{cached_fault_sim, key_netlist, CacheCtx, Store};
//!
//! let mut b = Builder::new("m");
//! let x = b.input("x");
//! let y = b.not(x);
//! b.output("y", y);
//! let netlist = b.finish();
//! let universe = FaultUniverse::enumerate(&netlist);
//! let mut patterns = PatternSeq::new(netlist.inputs().width());
//! patterns.push_value(10, 0b1);
//! patterns.push_value(11, 0b0);
//!
//! let dir = std::env::temp_dir().join(format!("warpstl-doc-{}", std::process::id()));
//! let store = Store::open(&dir).unwrap();
//! let cache = CacheCtx { store: Some(&store), netlist_key: key_netlist(&netlist) };
//!
//! // Cold: simulates and persists. Warm: replays, bit-identical.
//! let mut cold = FaultList::new(&universe);
//! let r1 = cached_fault_sim(
//!     cache, &netlist, &patterns, &mut cold,
//!     &FaultSimConfig::default(), None, &SimGuide::default(),
//! );
//! let mut warm = FaultList::new(&universe);
//! let r2 = cached_fault_sim(
//!     cache, &netlist, &patterns, &mut warm,
//!     &FaultSimConfig::default(), None, &SimGuide::default(),
//! );
//! assert_eq!(r1, r2);
//! assert_eq!(store.session().hits, 1);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod artifacts;
pub mod codec;
pub mod hash;
pub mod store;

pub use artifacts::{
    cached_analyze, cached_bridge_sim, cached_fault_sim, detection_flags, CacheCtx, FsimStamps,
};
pub use hash::{
    key_analysis, key_bridge_sim, key_fsim, key_netlist, key_ptp, CanonicalHasher, Key,
    ANALYZE_SCHEMA, FSIM_SCHEMA,
};
pub use store::{
    atomic_write, EntryInfo, EntryKind, EntryStatus, ScanReport, SessionStats, Store,
    FORMAT_VERSION, MAGIC, TEMP_MAX_AGE,
};

// `store.rs` counts cache traffic under these shared names.
pub use warpstl_obs::names;
