//! The canonical hasher: stable 128-bit content keys.
//!
//! Cache keys must be *canonical*: two structurally identical inputs must
//! hash to the same [`Key`] in every process, on every thread count, for
//! every `HashMap` iteration order — and must keep doing so across runs,
//! because the keys name files on disk. The hasher therefore
//!
//! - consumes only **values** (never pointers, indices into hash tables,
//!   or iteration-order-dependent sequences),
//! - length-prefixes every variable-length field, so adjacent fields
//!   cannot alias (`"ab" + "c"` ≠ `"a" + "bc"`),
//! - tags every artifact kind with a domain string and a schema version,
//!   so a semantic change invalidates old entries by key (never by a
//!   format error), and
//! - offers [`CanonicalHasher::absorb_unordered`] for genuinely unordered
//!   collections (e.g. a netlist's `HashMap`-backed kind histogram): each
//!   element is hashed independently and the element keys are combined
//!   with commutative operators (XOR + wrapping sum + count), making the
//!   result independent of enumeration order.
//!
//! The mixer is two independent 64-bit FNV-1a-style streams with distinct
//! offset bases and multipliers, concatenated into a 128-bit key. This is
//! not a cryptographic hash; it defends against accidental collisions
//! (~2^-64 for a cache with millions of entries), not adversaries — the
//! store additionally checksums every payload on disk.

use std::fmt;

use warpstl_fault::{BridgeKind, BridgeList, FaultList, FaultSimConfig, FaultStatus, SimGuide};
use warpstl_netlist::{GateKind, Netlist, PatternSeq};
use warpstl_programs::serialize::ptp_to_text;
use warpstl_programs::Ptp;

/// Bump when the fault engine's *observable semantics* change (detection
/// stamps, report rows): old fsim-stamp entries then miss by key.
/// v2: the guide's untestable bitmap prunes targets (pattern tallies and
/// the report's untestable row change with it).
/// v3: a fault-model tag domain-separates stuck-at from bridging entries
/// (see [`key_bridge_sim`]) so cache entries never alias across models.
pub const FSIM_SCHEMA: u32 = 3;

/// Bump when the netlist analyzer's rules or report shape change.
/// v2: implication-engine counts and the `redundant-logic` rule.
pub const ANALYZE_SCHEMA: u32 = 2;

/// A 128-bit canonical content key. Displays as 32 lowercase hex digits —
/// the on-disk entry file stem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u128);

impl Key {
    /// The all-zero key (placeholder when caching is disabled).
    pub const ZERO: Key = Key(0);

    /// The 32-hex-digit form used in entry file names.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
const PRIME_A: u64 = 0x0000_0100_0000_01b3; // FNV-1a prime
const OFFSET_B: u64 = 0x9e37_79b9_7f4a_7c15; // golden-ratio constant
const PRIME_B: u64 = 0xff51_afd7_ed55_8ccd; // splitmix64 mixer constant

/// The streaming canonical hasher. See the module docs for the rules
/// callers must follow to keep keys canonical.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    a: u64,
    b: u64,
}

impl Default for CanonicalHasher {
    fn default() -> CanonicalHasher {
        CanonicalHasher::new()
    }
}

impl CanonicalHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> CanonicalHasher {
        CanonicalHasher {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    /// Absorbs one byte into both streams.
    #[inline]
    pub fn byte(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(PRIME_A);
        self.b = (self.b ^ u64::from(v))
            .wrapping_mul(PRIME_B)
            .rotate_left(31);
    }

    /// Absorbs a byte slice (content only — prefix a length yourself when
    /// the field is variable-length next to another field).
    pub fn bytes(&mut self, v: &[u8]) {
        for &x in v {
            self.byte(x);
        }
    }

    /// Absorbs a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u128` (little-endian).
    pub fn u128(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` (so 32- and 64-bit hosts agree).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Absorbs a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.byte(u8::from(v));
    }

    /// Absorbs a string, length-prefixed.
    pub fn str(&mut self, v: &str) {
        self.len(v.len());
        self.bytes(v.as_bytes());
    }

    /// Absorbs an **unordered** collection: every element is hashed on its
    /// own (via `each`), and the element keys are folded with commutative
    /// operators, so the result is independent of iteration order — the
    /// escape hatch for `HashMap`-backed metadata.
    pub fn absorb_unordered<T>(
        &mut self,
        items: impl IntoIterator<Item = T>,
        mut each: impl FnMut(&mut CanonicalHasher, T),
    ) {
        let mut xor = 0u128;
        let mut sum = 0u128;
        let mut count = 0u64;
        for item in items {
            let mut h = CanonicalHasher::new();
            each(&mut h, item);
            let k = h.finish().0;
            xor ^= k;
            sum = sum.wrapping_add(k);
            count += 1;
        }
        self.u128(xor);
        self.u128(sum);
        self.u64(count);
    }

    /// The 128-bit key over everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> Key {
        // One final avalanche round per stream so short inputs still
        // spread into the high bits.
        let mut a = self.a;
        a ^= a >> 33;
        a = a.wrapping_mul(PRIME_B);
        a ^= a >> 29;
        let mut b = self.b;
        b ^= b >> 31;
        b = b.wrapping_mul(PRIME_A | 1);
        b ^= b >> 27;
        Key((u128::from(a) << 64) | u128::from(b))
    }
}

fn gate_kind_code(kind: GateKind) -> u8 {
    match kind {
        GateKind::Input => 0,
        GateKind::Const0 => 1,
        GateKind::Const1 => 2,
        GateKind::Buf => 3,
        GateKind::Not => 4,
        GateKind::And => 5,
        GateKind::Or => 6,
        GateKind::Nand => 7,
        GateKind::Nor => 8,
        GateKind::Xor => 9,
        GateKind::Xnor => 10,
        GateKind::Mux => 11,
        GateKind::Dff => 12,
    }
}

/// The canonical key of a netlist's *structure*: name, gate array (kinds
/// and meaningful pins in definition order), port maps, flip-flop nets,
/// and the `HashMap`-backed kind histogram absorbed unordered. Everything
/// downstream of the netlist (fault universe enumeration, dominance,
/// SCOAP keys) is a pure function of this structure, so it needs no
/// separate key material.
#[must_use]
pub fn key_netlist(netlist: &Netlist) -> Key {
    let mut h = CanonicalHasher::new();
    h.str("warpstl.netlist/v1");
    h.str(netlist.name());
    h.len(netlist.gates().len());
    for gate in netlist.gates() {
        h.byte(gate_kind_code(gate.kind));
        h.len(gate.inputs().len());
        for pin in gate.inputs() {
            h.u32(pin.0);
        }
    }
    for ports in [netlist.inputs(), netlist.outputs()] {
        h.len(ports.width());
        for (name, range) in ports.iter() {
            h.str(name);
            h.len(range.start);
            h.len(range.end);
        }
        for net in ports.nets() {
            h.u32(net.0);
        }
    }
    h.len(netlist.dffs().len());
    for net in netlist.dffs() {
        h.u32(net.0);
    }
    // HashMap-backed metadata: order-independent by construction.
    h.absorb_unordered(netlist.kind_histogram(), |h, (name, count)| {
        h.str(name);
        h.len(count);
    });
    h.finish()
}

/// The canonical key of a PTP, derived from its canonical text encoding
/// ([`ptp_to_text`]): name, target module, launch configuration, SB-slot
/// layout, initial-data writes, and the disassembled program. The text
/// round-trips losslessly (`ptp_from_text`), so a serialize→deserialize
/// cycle keys identically.
#[must_use]
pub fn key_ptp(ptp: &Ptp) -> Key {
    let mut h = CanonicalHasher::new();
    h.str("warpstl.ptp/v1");
    h.str(&ptp_to_text(ptp));
    h.finish()
}

/// Absorbs one pattern stream: width, then every row's clock-cycle stamp
/// and packed words.
fn absorb_stream(h: &mut CanonicalHasher, seq: &PatternSeq) {
    h.len(seq.width());
    h.len(seq.len());
    for i in 0..seq.len() {
        h.u64(seq.cc(i));
        for &word in seq.row(i) {
            h.u64(word);
        }
    }
}

/// The canonical key of one fault-engine invocation: netlist structure,
/// the exact pattern stream, the fault list's *entry state* (which faults
/// are still undetected — drop mode's behavior depends on it), the
/// semantic `FaultSimConfig` flags, and the guide shape. Deliberately
/// excluded: `threads` (the engine is bit-identical at every thread
/// count), prior detection stamps (first-detection-wins makes them
/// unobservable), and the list's run counter (replay stamps the warm
/// list's own run number, exactly as a live simulation would).
#[must_use]
pub fn key_fsim(
    netlist_key: Key,
    patterns: &PatternSeq,
    list: &FaultList,
    config: &FaultSimConfig,
    guide: &SimGuide<'_>,
) -> Key {
    let mut h = CanonicalHasher::new();
    h.str("warpstl.fsim/v1");
    h.u32(FSIM_SCHEMA);
    // Fault-model tag: 0 = stuck-at, 1 = bridging (key_bridge_sim). The
    // models share the stamp payload format but never the key space.
    h.byte(0);
    h.u128(netlist_key.0);
    absorb_stream(&mut h, patterns);
    h.len(list.len());
    for id in 0..list.len() {
        h.bool(matches!(list.status(id), FaultStatus::Undetected));
    }
    h.bool(config.drop_detected);
    h.bool(config.early_exit);
    h.bool(guide.dominance.is_some());
    h.bool(guide.order_keys.is_some());
    // The untestable bitmap changes the target set, and with it the
    // per-pattern tallies and the report's untestable row — so, unlike
    // `levels`, its *content* is key material.
    h.bool(guide.untestable.is_some());
    if let Some(unt) = guide.untestable {
        h.len(unt.len());
        for &u in unt {
            h.bool(u);
        }
    }
    h.finish()
}

/// The canonical key of one bridging-fault simulation: the stuck-at
/// [`key_fsim`] material with the model tag set to `1`, plus the *sampled
/// universe content* — bridging universes are drawn by a seeded sampler,
/// not derived from structure alone, so the endpoint/kind triples are key
/// material (two configs sampling different pair sets must never alias).
/// `threads` and `backend` stay excluded: the bridge engine is
/// bit-identical across both.
#[must_use]
pub fn key_bridge_sim(
    netlist_key: Key,
    patterns: &PatternSeq,
    list: &BridgeList,
    config: &FaultSimConfig,
) -> Key {
    let mut h = CanonicalHasher::new();
    h.str("warpstl.fsim/v1");
    h.u32(FSIM_SCHEMA);
    // Fault-model tag: 1 = bridging (see key_fsim).
    h.byte(1);
    h.u128(netlist_key.0);
    absorb_stream(&mut h, patterns);
    h.len(list.len());
    for id in 0..list.len() {
        let f = list.fault(id);
        h.u32(f.a.0);
        h.u32(f.b.0);
        h.byte(match f.kind {
            BridgeKind::And => 0,
            BridgeKind::Or => 1,
        });
        h.bool(matches!(list.status(id), FaultStatus::Undetected));
    }
    h.bool(config.drop_detected);
    h.bool(config.early_exit);
    h.finish()
}

/// The canonical key of the static netlist analysis artifact.
#[must_use]
pub fn key_analysis(netlist_key: Key) -> Key {
    let mut h = CanonicalHasher::new();
    h.str("warpstl.analyze/v1");
    h.u32(ANALYZE_SCHEMA);
    h.u128(netlist_key.0);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::modules::ModuleKind;
    use warpstl_netlist::Builder;

    #[test]
    fn keys_are_deterministic_across_rebuilds() {
        let a = key_netlist(&ModuleKind::DecoderUnit.build());
        let b = key_netlist(&ModuleKind::DecoderUnit.build());
        assert_eq!(a, b);
        assert_ne!(a, key_netlist(&ModuleKind::Sfu.build()));
    }

    #[test]
    fn length_prefixes_prevent_aliasing() {
        let mut h1 = CanonicalHasher::new();
        h1.str("ab");
        h1.str("c");
        let mut h2 = CanonicalHasher::new();
        h2.str("a");
        h2.str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn unordered_absorb_ignores_iteration_order() {
        let items = [("and", 3usize), ("or", 7), ("not", 1), ("mux", 2)];
        let mut fwd = CanonicalHasher::new();
        fwd.absorb_unordered(items.iter(), |h, &(n, c)| {
            h.str(n);
            h.len(c);
        });
        let mut rev = CanonicalHasher::new();
        rev.absorb_unordered(items.iter().rev(), |h, &(n, c)| {
            h.str(n);
            h.len(c);
        });
        assert_eq!(fwd.finish(), rev.finish());

        // ...but not element content.
        let mut other = CanonicalHasher::new();
        other.absorb_unordered(items.iter(), |h, &(n, c)| {
            h.str(n);
            h.len(c + 1);
        });
        assert_ne!(fwd.finish(), other.finish());
    }

    #[test]
    fn fsim_key_tracks_list_state_but_not_threads() {
        let netlist = ModuleKind::Sfu.build();
        let nk = key_netlist(&netlist);
        let universe = warpstl_fault::FaultUniverse::enumerate(&netlist);
        let mut list = warpstl_fault::FaultList::new(&universe);
        let mut pats = PatternSeq::new(netlist.inputs().width());
        pats.push_value(0, 0xdead_beef);
        let guide = SimGuide::default();

        let base = key_fsim(nk, &pats, &list, &FaultSimConfig::default(), &guide);
        let threads8 = key_fsim(
            nk,
            &pats,
            &list,
            &FaultSimConfig {
                threads: 8,
                ..FaultSimConfig::default()
            },
            &guide,
        );
        assert_eq!(base, threads8, "thread count must not enter the key");

        // The sim backend is an execution strategy, not a semantic input:
        // the event path and the levelized kernel are bit-identical, so an
        // entry written under one must replay under the other.
        for backend in [
            warpstl_fault::SimBackend::Event,
            warpstl_fault::SimBackend::Kernel,
            warpstl_fault::SimBackend::Kernel64,
        ] {
            let k = key_fsim(
                nk,
                &pats,
                &list,
                &FaultSimConfig {
                    backend,
                    ..FaultSimConfig::default()
                },
                &guide,
            );
            assert_eq!(base, k, "backend {backend} must not enter the key");
        }

        // Likewise the cached levelization: a pure accelerator, never a
        // semantic input.
        let levels = netlist.levelize();
        let leveled = SimGuide {
            levels: Some(&levels),
            ..SimGuide::default()
        };
        assert_eq!(
            base,
            key_fsim(nk, &pats, &list, &FaultSimConfig::default(), &leveled),
            "levelization guide must not enter the key"
        );

        // The untestable bitmap is semantic: presence and content both key.
        let unt = vec![false; list.len()];
        let pruned = SimGuide {
            untestable: Some(&unt),
            ..SimGuide::default()
        };
        let pruned_key = key_fsim(nk, &pats, &list, &FaultSimConfig::default(), &pruned);
        assert_ne!(base, pruned_key, "untestable presence must enter the key");
        let mut unt2 = unt.clone();
        unt2[0] = true;
        let pruned2 = SimGuide {
            untestable: Some(&unt2),
            ..SimGuide::default()
        };
        assert_ne!(
            pruned_key,
            key_fsim(nk, &pats, &list, &FaultSimConfig::default(), &pruned2),
            "untestable content must enter the key"
        );

        list.begin_run();
        list.mark_detected(0, 1, 0);
        let after = key_fsim(nk, &pats, &list, &FaultSimConfig::default(), &guide);
        assert_ne!(base, after, "entry list state must enter the key");

        let non_drop = key_fsim(
            nk,
            &pats,
            &list,
            &FaultSimConfig {
                drop_detected: false,
                ..FaultSimConfig::default()
            },
            &guide,
        );
        assert_ne!(after, non_drop, "semantic config flags must enter the key");
    }

    #[test]
    fn stream_content_is_keyed_not_identity() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.not(x);
        b.output("y", y);
        let n = b.finish();
        let nk = key_netlist(&n);
        let universe = warpstl_fault::FaultUniverse::enumerate(&n);
        let list = warpstl_fault::FaultList::new(&universe);
        let guide = SimGuide::default();
        let cfg = FaultSimConfig::default();

        let mut p1 = PatternSeq::new(1);
        p1.push_bits(3, &[true]);
        let mut p2 = PatternSeq::new(1);
        p2.push_bits(3, &[true]);
        assert_eq!(
            key_fsim(nk, &p1, &list, &cfg, &guide),
            key_fsim(nk, &p2, &list, &cfg, &guide)
        );
        let mut p3 = PatternSeq::new(1);
        p3.push_bits(4, &[true]);
        assert_ne!(
            key_fsim(nk, &p1, &list, &cfg, &guide),
            key_fsim(nk, &p3, &list, &cfg, &guide)
        );
    }

    #[test]
    fn artifact_kinds_are_domain_separated() {
        let nk = key_netlist(&ModuleKind::DecoderUnit.build());
        assert_ne!(key_analysis(nk), nk);
    }

    #[test]
    fn fault_models_never_alias_in_the_key_space() {
        // Regression: stuck-at and bridging entries over the same netlist,
        // the same pattern stream, and the same config must key apart —
        // otherwise a warm store could replay stamps of the wrong model.
        let netlist = ModuleKind::Sfu.build();
        let nk = key_netlist(&netlist);
        let cfg = FaultSimConfig::default();
        let mut pats = PatternSeq::new(netlist.inputs().width());
        pats.push_value(0, 0xdead_beef);

        let universe = warpstl_fault::FaultUniverse::enumerate(&netlist);
        let sa_list = warpstl_fault::FaultList::new(&universe);
        let sa_key = key_fsim(nk, &pats, &sa_list, &cfg, &SimGuide::default());

        let bridges = warpstl_fault::BridgeUniverse::sample(
            &netlist,
            &warpstl_fault::BridgeConfig::default(),
        );
        assert!(!bridges.is_empty());
        let br_list = bridges.new_list();
        let br_key = key_bridge_sim(nk, &pats, &br_list, &cfg);
        assert_ne!(sa_key, br_key, "stuck-at and bridging keys alias");

        // The sampled universe content is key material: a different seed
        // that draws a different pair set must change the key.
        let other = warpstl_fault::BridgeUniverse::sample(
            &netlist,
            &warpstl_fault::BridgeConfig { pairs: 3, seed: 7 },
        );
        if other.faults() != bridges.faults() {
            let other_key = key_bridge_sim(nk, &pats, &other.new_list(), &cfg);
            assert_ne!(br_key, other_key, "universe content must enter the key");
        }

        // List entry state keys, like the stuck-at path.
        let mut warm = bridges.new_list();
        warm.begin_run();
        warm.mark_detected(0, 1, 0);
        assert_ne!(br_key, key_bridge_sim(nk, &pats, &warm, &cfg));
    }
}
