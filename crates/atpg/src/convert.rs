//! The "parser tool": converts ATPG patterns into GPU instructions.
//!
//! The paper: "A parser tool converted the ATPG test patterns into valid
//! instructions for the GPU. The test patterns are converted partially due
//! to a lack of fully equivalent instructions of GPU and generated
//! patterns." This module reproduces both halves: the conversion itself and
//! the partiality — a pattern converts only when some instruction drives
//! every bit PODEM actually *cares* about (don't-care bits may take
//! whatever the instruction produces); patterns requiring the
//! predicated-select datapath, a comparison select on a non-comparing
//! operation, or values on operand fields no instruction drives are
//! rejected.
//!
//! Converted snippets use a fixed register convention: sources in `R1`,
//! `R2`, `R3`, result in `R4`. The test-program generator wraps each snippet
//! with the result propagation (store / signature fold).

use warpstl_isa::{CmpOp, Instruction, Opcode, Reg};
use warpstl_netlist::modules::{sfu, sp_core};

/// Source register for operand `a`.
pub const REG_A: u8 = 1;
/// Source register for operand `b`.
pub const REG_B: u8 = 2;
/// Source register for operand `c`.
pub const REG_C: u8 = 3;
/// Result register.
pub const REG_RESULT: u8 = 4;

fn field_u32(bits: &[bool], lo: usize, width: usize) -> u32 {
    bits[lo..lo + width]
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b as u32) << i))
}

/// Field value taking only PODEM-assigned (care) bits; don't-cares read 0.
fn care_u32(care: &[Option<bool>], lo: usize, width: usize) -> u32 {
    care[lo..lo + width]
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b == Some(true)) as u32) << i)
}

/// Whether a field has no care bit forced to 1 (so driving 0 satisfies it).
fn zero_ok(care: &[Option<bool>], lo: usize, width: usize) -> bool {
    care[lo..lo + width].iter().all(|&b| b != Some(true))
}

/// Marks every bit of a concrete pattern as cared-for (useful for tests and
/// for re-converting captured patterns).
#[must_use]
pub fn full_care(bits: &[bool]) -> Vec<Option<bool>> {
    bits.iter().map(|&b| Some(b)).collect()
}

fn mov32i(reg: u8, value: u32) -> Instruction {
    Instruction::build(Opcode::Mov32i)
        .dst(Reg::new(reg))
        .src(value as i32)
        .finish()
        .expect("valid MOV32I")
}

fn binop(op: Opcode, cmp: Option<CmpOp>) -> Instruction {
    let mut b = Instruction::build(op)
        .dst(Reg::new(REG_RESULT))
        .src(Reg::new(REG_A))
        .src(Reg::new(REG_B));
    if let Some(c) = cmp {
        b = b.cmp(c);
    }
    b.finish().expect("valid binary op")
}

fn unop(op: Opcode) -> Instruction {
    Instruction::build(op)
        .dst(Reg::new(REG_RESULT))
        .src(Reg::new(REG_A))
        .finish()
        .expect("valid unary op")
}

/// Converts one SP-core ATPG pattern (in [`sp_core`] flat input-bit order)
/// into an instruction snippet, or `None` when no instruction sequence
/// drives all of the pattern's care bits.
///
/// `bits` is the filled stimulus (don't-cares already randomized); `care`
/// is PODEM's raw assignment for the same pattern. The emitted instructions
/// drive `a`/`b` (and `c` for MAD) with the filled values and leave fields
/// no instruction reaches at 0, which is only legal when those fields'
/// care bits are 0.
///
/// # Panics
///
/// Panics if `bits` or `care` is not [`sp_core::PATTERN_WIDTH`] long.
///
/// # Examples
///
/// ```
/// use warpstl_atpg::convert::{convert_sp_pattern, full_care};
/// use warpstl_netlist::modules::sp_core;
///
/// let bits = sp_core::pack_pattern(sp_core::OP_ADD, 0, 7, 9, 0);
/// let snippet = convert_sp_pattern(&bits, &full_care(&bits)).expect("ADD converts");
/// assert_eq!(snippet.len(), 3); // two loads + IADD
/// assert_eq!(snippet[2].to_string(), "IADD R4, R1, R2;");
///
/// // The predicated-select datapath has no direct instruction equivalent.
/// let sel = sp_core::pack_pattern(sp_core::OP_SEL, 0, 1, 2, 3);
/// assert!(convert_sp_pattern(&sel, &full_care(&sel)).is_none());
/// ```
#[must_use]
pub fn convert_sp_pattern(bits: &[bool], care: &[Option<bool>]) -> Option<Vec<Instruction>> {
    assert_eq!(bits.len(), sp_core::PATTERN_WIDTH, "bad SP pattern width");
    assert_eq!(care.len(), sp_core::PATTERN_WIDTH, "bad SP care width");
    // The operation select: only the bits PODEM cares about are fixed; any
    // don't-care op bit is chosen as 0.
    let op = care_u32(care, 0, 4) as u8;
    let cmp = care_u32(care, 4, 3) as u8;
    let a = field_u32(bits, 7, 32);
    let b = field_u32(bits, 39, 32);
    let c = field_u32(bits, 71, 32);
    let cmp_zero_ok = zero_ok(care, 4, 3);
    let b_zero_ok = zero_ok(care, 39, 32);
    let c_zero_ok = zero_ok(care, 71, 32);

    let cmp_op = CmpOp::from_bits(cmp);
    let mut out = Vec::with_capacity(4);
    use sp_core::*;
    let tail = match op {
        OP_ADD | OP_SUB | OP_AND | OP_OR | OP_XOR | OP_SHL | OP_SHR | OP_MUL => {
            if !cmp_zero_ok || !c_zero_ok {
                return None;
            }
            let opcode = match op {
                OP_ADD => Opcode::Iadd,
                OP_SUB => Opcode::Isub,
                OP_AND => Opcode::And,
                OP_OR => Opcode::Or,
                OP_XOR => Opcode::Xor,
                OP_SHL => Opcode::Shl,
                OP_SHR => Opcode::Shr,
                _ => Opcode::Imul,
            };
            out.push(mov32i(REG_A, a));
            out.push(mov32i(REG_B, b));
            binop(opcode, None)
        }
        OP_MAD => {
            if !cmp_zero_ok {
                return None;
            }
            out.push(mov32i(REG_A, a));
            out.push(mov32i(REG_B, b));
            out.push(mov32i(REG_C, c));
            Instruction::build(Opcode::Imad)
                .dst(Reg::new(REG_RESULT))
                .src(Reg::new(REG_A))
                .src(Reg::new(REG_B))
                .src(Reg::new(REG_C))
                .finish()
                .expect("valid IMAD")
        }
        OP_MIN | OP_MAX => {
            if !c_zero_ok {
                return None;
            }
            let cmp_op = cmp_op?;
            let valid = if op == OP_MIN {
                matches!(cmp_op, CmpOp::Lt | CmpOp::Le)
            } else {
                matches!(cmp_op, CmpOp::Gt | CmpOp::Ge)
            };
            if !valid {
                return None;
            }
            out.push(mov32i(REG_A, a));
            out.push(mov32i(REG_B, b));
            binop(Opcode::Imnmx, Some(cmp_op))
        }
        OP_SET => {
            if !c_zero_ok {
                return None;
            }
            let cmp_op = cmp_op?;
            out.push(mov32i(REG_A, a));
            out.push(mov32i(REG_B, b));
            binop(Opcode::Iset, Some(cmp_op))
        }
        OP_NOT | OP_MOV | OP_ABS => {
            if !cmp_zero_ok || !b_zero_ok || !c_zero_ok {
                return None;
            }
            let opcode = match op {
                OP_NOT => Opcode::Not,
                OP_MOV => Opcode::Mov,
                _ => Opcode::Iabs,
            };
            out.push(mov32i(REG_A, a));
            unop(opcode)
        }
        // The predicated-select datapath needs predicate state no single
        // instruction drives.
        _ => return None,
    };
    out.push(tail);
    Some(out)
}

/// Converts one SFU ATPG pattern (in [`sfu`] flat input-bit order) into an
/// instruction snippet, or `None` for reserved function selects.
///
/// # Panics
///
/// Panics if `bits` or `care` is not [`sfu::PATTERN_WIDTH`] long.
#[must_use]
pub fn convert_sfu_pattern(bits: &[bool], care: &[Option<bool>]) -> Option<Vec<Instruction>> {
    assert_eq!(bits.len(), sfu::PATTERN_WIDTH, "bad SFU pattern width");
    assert_eq!(care.len(), sfu::PATTERN_WIDTH, "bad SFU care width");
    let func = care_u32(care, 0, 3) as u8;
    let x = field_u32(bits, 3, 32);
    let opcode = match func {
        sfu::F_RCP => Opcode::Rcp,
        sfu::F_RSQ => Opcode::Rsq,
        sfu::F_SIN => Opcode::Sin,
        sfu::F_COS => Opcode::Cos,
        sfu::F_EX2 => Opcode::Ex2,
        sfu::F_LG2 => Opcode::Lg2,
        _ => return None,
    };
    Some(vec![mov32i(REG_A, x), unop(opcode)])
}

/// Statistics of a bulk conversion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionStats {
    /// Patterns successfully converted.
    pub converted: usize,
    /// Patterns with no instruction equivalent (dropped).
    pub dropped: usize,
}

impl ConversionStats {
    /// The conversion rate in [0, 1].
    #[must_use]
    pub fn rate(&self) -> f64 {
        let total = self.converted + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.converted as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(bits: &[bool]) -> Option<Vec<Instruction>> {
        convert_sp_pattern(bits, &full_care(bits))
    }

    #[test]
    fn binary_ops_convert() {
        for op in [
            sp_core::OP_ADD,
            sp_core::OP_SUB,
            sp_core::OP_AND,
            sp_core::OP_OR,
            sp_core::OP_XOR,
            sp_core::OP_SHL,
            sp_core::OP_SHR,
            sp_core::OP_MUL,
        ] {
            let bits = sp_core::pack_pattern(op, 0, 0xdead, 0xbeef, 0);
            let s = strict(&bits).unwrap_or_else(|| panic!("op {op}"));
            assert_eq!(s.len(), 3);
            assert_eq!(s[0].imm(), Some(0xdead));
            assert_eq!(s[1].imm(), Some(0xbeef));
        }
    }

    #[test]
    fn mad_loads_three_operands() {
        let bits = sp_core::pack_pattern(sp_core::OP_MAD, 0, 1, 2, 3);
        let s = strict(&bits).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s[3].opcode, Opcode::Imad);
    }

    #[test]
    fn unconvertible_patterns_are_dropped() {
        // SEL: no equivalent.
        let bits = sp_core::pack_pattern(sp_core::OP_SEL, 0, 1, 2, 1);
        assert!(strict(&bits).is_none());
        // ADD with a cared-for nonzero c field: the instruction can't drive c.
        let bits = sp_core::pack_pattern(sp_core::OP_ADD, 0, 1, 2, 7);
        assert!(strict(&bits).is_none());
        // ADD with a cared-for nonzero cmp select.
        let bits = sp_core::pack_pattern(sp_core::OP_ADD, 3, 1, 2, 0);
        assert!(strict(&bits).is_none());
        // MIN with a MAX-side comparison.
        let bits = sp_core::pack_pattern(sp_core::OP_MIN, sp_core::CMP_GT, 1, 2, 0);
        assert!(strict(&bits).is_none());
        // Reserved cmp value.
        let bits = sp_core::pack_pattern(sp_core::OP_SET, 7, 1, 2, 0);
        assert!(strict(&bits).is_none());
    }

    #[test]
    fn dont_care_fields_allow_conversion() {
        // Same ADD pattern, but the nonzero c came from random fill
        // (care = None): the instruction drives c = 0, which is compatible.
        let bits = sp_core::pack_pattern(sp_core::OP_ADD, 0, 1, 2, 0xffff_ffff);
        let mut care = full_care(&bits);
        for slot in care.iter_mut().skip(71) {
            *slot = None;
        }
        let s = convert_sp_pattern(&bits, &care).expect("don't-care c converts");
        assert_eq!(s[2].opcode, Opcode::Iadd);
    }

    #[test]
    fn min_max_use_the_right_modifiers() {
        let bits = sp_core::pack_pattern(sp_core::OP_MIN, sp_core::CMP_LE, 5, 9, 0);
        let s = strict(&bits).unwrap();
        assert_eq!(s[2].to_string(), "IMNMX.LE R4, R1, R2;");
        let bits = sp_core::pack_pattern(sp_core::OP_MAX, sp_core::CMP_GE, 5, 9, 0);
        let s = strict(&bits).unwrap();
        assert_eq!(s[2].to_string(), "IMNMX.GE R4, R1, R2;");
    }

    #[test]
    fn unary_ops_require_clear_unused_fields() {
        let bits = sp_core::pack_pattern(sp_core::OP_NOT, 0, 0xff, 0, 0);
        assert!(strict(&bits).is_some());
        let bits = sp_core::pack_pattern(sp_core::OP_NOT, 0, 0xff, 1, 0);
        assert!(strict(&bits).is_none());
    }

    #[test]
    fn sfu_patterns_convert_for_all_functions() {
        for f in 0..6u8 {
            let bits = sfu::pack_pattern(f, 0x3f80_0000);
            let s = convert_sfu_pattern(&bits, &full_care(&bits)).unwrap();
            assert_eq!(s.len(), 2);
            assert_eq!(s[0].imm(), Some(0x3f80_0000u32 as i32));
        }
        let bits = sfu::pack_pattern(6, 0);
        assert!(convert_sfu_pattern(&bits, &full_care(&bits)).is_none());
    }

    #[test]
    fn converted_snippet_reproduces_the_pattern_on_the_gpu() {
        // Run the snippet on the GPU model and check the captured SP pattern
        // equals the ATPG pattern.
        use warpstl_gpu::{Gpu, Kernel, KernelConfig, RunOptions};
        let want = sp_core::pack_pattern(sp_core::OP_XOR, 0, 0x1234_5678, 0x9abc_def0, 0);
        let mut program = strict(&want).unwrap();
        program.push(Instruction::bare(Opcode::Exit));
        let kernel = Kernel::new("conv", program, KernelConfig::new(1, 8));
        let r = Gpu::default()
            .run(
                &kernel,
                &RunOptions {
                    capture_sp: true,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        // The last pattern captured by SP lane 0 must be the XOR pattern.
        let seq = &r.patterns.sp[0];
        let last = seq.len() - 1;
        let got: Vec<bool> = (0..seq.width()).map(|b| seq.bit(last, b)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stats_rate() {
        let s = ConversionStats {
            converted: 3,
            dropped: 1,
        };
        assert!((s.rate() - 0.75).abs() < 1e-12);
        assert_eq!(ConversionStats::default().rate(), 0.0);
    }
}
