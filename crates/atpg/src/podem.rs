//! The PODEM test-generation algorithm, optionally guided by SCOAP
//! testability scores (see [`Podem::with_guidance`]) and by the static
//! implication graph (see [`Podem::with_implications`]).

use warpstl_analyze::{Implications, Scoap};
use warpstl_fault::{Fault, FaultSite, Polarity};
use warpstl_netlist::{GateKind, NetId, Netlist};

/// Three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tv {
    Zero,
    One,
    X,
}

impl Tv {
    fn of(b: bool) -> Tv {
        if b {
            Tv::One
        } else {
            Tv::Zero
        }
    }

    fn not(self) -> Tv {
        match self {
            Tv::Zero => Tv::One,
            Tv::One => Tv::Zero,
            Tv::X => Tv::X,
        }
    }

    fn and(self, o: Tv) -> Tv {
        match (self, o) {
            (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
            (Tv::One, Tv::One) => Tv::One,
            _ => Tv::X,
        }
    }

    fn or(self, o: Tv) -> Tv {
        match (self, o) {
            (Tv::One, _) | (_, Tv::One) => Tv::One,
            (Tv::Zero, Tv::Zero) => Tv::Zero,
            _ => Tv::X,
        }
    }

    fn xor(self, o: Tv) -> Tv {
        match (self, o) {
            (Tv::X, _) | (_, Tv::X) => Tv::X,
            (a, b) if a == b => Tv::Zero,
            _ => Tv::One,
        }
    }

    fn mux(s: Tv, a: Tv, b: Tv) -> Tv {
        match s {
            Tv::One => a,
            Tv::Zero => b,
            Tv::X => {
                if a == b && a != Tv::X {
                    a
                } else {
                    Tv::X
                }
            }
        }
    }
}

fn eval3(kind: GateKind, a: Tv, b: Tv, c: Tv) -> Tv {
    match kind {
        GateKind::Input | GateKind::Buf | GateKind::Dff => a,
        GateKind::Const0 => Tv::Zero,
        GateKind::Const1 => Tv::One,
        GateKind::Not => a.not(),
        GateKind::And => a.and(b),
        GateKind::Or => a.or(b),
        GateKind::Nand => a.and(b).not(),
        GateKind::Nor => a.or(b).not(),
        GateKind::Xor => a.xor(b),
        GateKind::Xnor => a.xor(b).not(),
        GateKind::Mux => Tv::mux(a, b, c),
    }
}

/// The outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found: the primary-input assignment, in flat input order.
    /// `None` positions are don't-cares.
    Test(Vec<Option<bool>>),
    /// The fault is provably untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// A PODEM test generator bound to a combinational netlist.
///
/// # Examples
///
/// ```
/// use warpstl_atpg::{Podem, PodemOutcome};
/// use warpstl_fault::{Fault, FaultSite, Polarity};
/// use warpstl_netlist::{Builder, NetId};
///
/// let mut b = Builder::new("and2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.and(x, y);
/// b.output("z", z);
/// let n = b.finish();
///
/// let podem = Podem::new(&n);
/// let f = Fault::new(FaultSite::Output(z), Polarity::Sa0);
/// match podem.generate(f) {
///     PodemOutcome::Test(pis) => {
///         // z stuck-at-0 needs x = y = 1.
///         assert_eq!(pis, vec![Some(true), Some(true)]);
///     }
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    backtrack_limit: usize,
    guidance: Option<&'a Scoap>,
    implications: Option<&'a Implications>,
    implication_fast_path: bool,
}

impl<'a> Podem<'a> {
    /// Binds to `netlist` with the default backtrack limit (1000).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential: PODEM targets combinational
    /// logic (the paper's modules are fault-simulated combinationally too).
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Podem<'a> {
        assert!(
            netlist.is_combinational(),
            "PODEM requires a combinational netlist"
        );
        Podem {
            netlist,
            backtrack_limit: 1000,
            guidance: None,
            implications: None,
            implication_fast_path: true,
        }
    }

    /// Sets the backtrack limit.
    #[must_use]
    pub fn with_backtrack_limit(mut self, limit: usize) -> Podem<'a> {
        self.backtrack_limit = limit;
        self
    }

    /// Guides pin choices with SCOAP scores (computed for the *same*
    /// netlist): where the unguided search picks the first X input,
    /// the guided search picks by controllability — the cheapest input
    /// when any one suffices, the hardest when all are needed (failing
    /// on the hardest first prunes doomed subtrees sooner). Verdicts
    /// (testable/untestable) are unaffected; only the search order and
    /// the produced vectors may change.
    #[must_use]
    pub fn with_guidance(mut self, scoap: &'a Scoap) -> Podem<'a> {
        self.guidance = Some(scoap);
        self
    }

    /// Consults the static implication graph (computed for the *same*
    /// netlist) before and during search. Three sound uses:
    ///
    /// - an impossible activation literal (the fault-free circuit can
    ///   never drive the faulty line to the opposite of the stuck value)
    ///   returns [`PodemOutcome::Untestable`] with zero backtracks;
    /// - the closure of the activation literal yields *necessary*
    ///   primary-input assignments, seeded before the first decision so
    ///   the search never explores their contradictions;
    /// - the same closure's internal literals are watched during search
    ///   (early conflict detection): three-valued simulation is monotone,
    ///   so the moment a defined good value contradicts a necessary
    ///   literal, the branch can never activate the fault and is
    ///   abandoned.
    ///
    /// Verdicts are unaffected — the seeded assignments and watched
    /// literals hold in every test, so exhausting the remaining space
    /// still proves untestability — but produced vectors and backtrack
    /// counts may change.
    #[must_use]
    pub fn with_implications(mut self, imp: &'a Implications) -> Podem<'a> {
        self.implications = Some(imp);
        self.implication_fast_path = true;
        self
    }

    /// Like [`Podem::with_implications`] but keeps only the search
    /// accelerators (closure seeding and early conflict detection),
    /// dropping the impossible-literal fast path: every verdict is earned
    /// by an actual search. This is the mode the untestability
    /// cross-check uses — the fast path would answer from the very proof
    /// under test.
    #[must_use]
    pub fn with_implication_seeding(mut self, imp: &'a Implications) -> Podem<'a> {
        self.implications = Some(imp);
        self.implication_fast_path = false;
        self
    }

    /// Attempts to generate a test for `fault`.
    #[must_use]
    pub fn generate(&self, fault: Fault) -> PodemOutcome {
        let mut search = Search::new(self.netlist, fault, self.backtrack_limit, self.guidance);
        if let Some(imp) = self.implications {
            let site = match fault.site {
                FaultSite::Output(n) => n,
                FaultSite::InputPin(n, p) => self.netlist.gates()[n.index()].pins[p as usize],
            };
            let want = !fault.polarity.value();
            if site.index() < self.netlist.gates().len() {
                if self.implication_fast_path && imp.is_impossible(site.index(), want) {
                    return PodemOutcome::Untestable;
                }
                for (net, value) in imp.closure(site.index(), want) {
                    search.require(NetId(net as u32), value);
                }
            }
        }
        search.run()
    }
}

struct Search<'a> {
    netlist: &'a Netlist,
    fault: Fault,
    limit: usize,
    guidance: Option<&'a Scoap>,
    /// PI assignment by flat input position.
    pi: Vec<Tv>,
    good: Vec<Tv>,
    faulty: Vec<Tv>,
    /// Flat input position for each net that is a PI.
    pi_pos: Vec<Option<usize>>,
    /// Reader gates of each net, for the X-path check.
    readers: Vec<Vec<u32>>,
    /// Primary-output membership, for the X-path check.
    is_po: Vec<bool>,
    /// Necessary `(net, good value)` literals from the activation
    /// closure, watched for early conflicts.
    required: Vec<(u32, bool)>,
}

impl<'a> Search<'a> {
    fn new(
        netlist: &'a Netlist,
        fault: Fault,
        limit: usize,
        guidance: Option<&'a Scoap>,
    ) -> Search<'a> {
        let n = netlist.gates().len();
        let mut pi_pos = vec![None; n];
        for (pos, &net) in netlist.inputs().nets().iter().enumerate() {
            pi_pos[net.index()] = Some(pos);
        }
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in netlist.gates().iter().enumerate() {
            for &src in g.inputs() {
                readers[src.index()].push(i as u32);
            }
        }
        let mut is_po = vec![false; n];
        for &o in netlist.outputs().nets() {
            is_po[o.index()] = true;
        }
        Search {
            netlist,
            fault,
            limit,
            guidance,
            pi: vec![Tv::X; netlist.inputs().width()],
            good: vec![Tv::X; n],
            faulty: vec![Tv::X; n],
            pi_pos,
            readers,
            is_po,
            required: Vec::new(),
        }
    }

    /// Registers a necessary literal from the activation closure. For a
    /// primary input the value is fixed before the search starts (seeded
    /// values are never decision points: the search cannot flip or
    /// unassign them); every literal is additionally watched for early
    /// conflicts by [`Search::requirement_violated`].
    fn require(&mut self, net: NetId, value: bool) {
        if let Some(pos) = self.pi_pos.get(net.index()).copied().flatten() {
            self.pi[pos] = Tv::of(value);
        }
        if net.index() < self.good.len() {
            self.required.push((net.index() as u32, value));
        }
    }

    /// Early conflict detection: three-valued simulation is monotone
    /// (defined good values persist under any extension), so a defined
    /// good value contradicting a necessary activation literal proves no
    /// test exists below the current node.
    fn requirement_violated(&self) -> bool {
        self.required
            .iter()
            .any(|&(n, v)| self.good[n as usize] == Tv::of(!v))
    }

    /// Chooses which of two pins to backtrace into when driving both to
    /// `inner`. Unguided (or with one pin already assigned) this is the
    /// first X pin, preserving the historical search order. Guided with
    /// both pins X, controllability decides: the *cheapest* pin when any
    /// one suffices (`all_needed == false`), the *hardest* when every pin
    /// must reach `inner` — failing on the hardest first prunes doomed
    /// subtrees sooner.
    fn pick_pin(&self, a: NetId, b: NetId, inner: bool, all_needed: bool) -> NetId {
        let a_x = self.good[a.index()] == Tv::X;
        let b_x = self.good[b.index()] == Tv::X;
        if a_x && b_x {
            if let Some(s) = self.guidance {
                let (ca, cb) = (s.control_cost(a, inner), s.control_cost(b, inner));
                let a_first = if all_needed { ca >= cb } else { ca <= cb };
                return if a_first { a } else { b };
            }
        }
        if a_x {
            a
        } else {
            b
        }
    }

    fn faulty_pin(&self, gate: usize, pin: usize, raw: Tv) -> Tv {
        if let FaultSite::InputPin(n, p) = self.fault.site {
            if n.index() == gate && p as usize == pin {
                return Tv::of(self.fault.polarity.value());
            }
        }
        raw
    }

    fn imply(&mut self) {
        let gates = self.netlist.gates();
        for (i, g) in gates.iter().enumerate() {
            let (ga, gb, gc, fa, fb, fc) = match g.kind.arity() {
                0 => (Tv::X, Tv::X, Tv::X, Tv::X, Tv::X, Tv::X),
                1 => {
                    let s = g.pins[0].index();
                    (
                        self.good[s],
                        Tv::X,
                        Tv::X,
                        self.faulty_pin(i, 0, self.faulty[s]),
                        Tv::X,
                        Tv::X,
                    )
                }
                2 => {
                    let (s0, s1) = (g.pins[0].index(), g.pins[1].index());
                    (
                        self.good[s0],
                        self.good[s1],
                        Tv::X,
                        self.faulty_pin(i, 0, self.faulty[s0]),
                        self.faulty_pin(i, 1, self.faulty[s1]),
                        Tv::X,
                    )
                }
                _ => {
                    let (s0, s1, s2) = (g.pins[0].index(), g.pins[1].index(), g.pins[2].index());
                    (
                        self.good[s0],
                        self.good[s1],
                        self.good[s2],
                        self.faulty_pin(i, 0, self.faulty[s0]),
                        self.faulty_pin(i, 1, self.faulty[s1]),
                        self.faulty_pin(i, 2, self.faulty[s2]),
                    )
                }
            };
            let gv = if g.kind == GateKind::Input {
                self.pi[self.pi_pos[i].expect("input has position")]
            } else {
                eval3(g.kind, ga, gb, gc)
            };
            let mut fv = if g.kind == GateKind::Input {
                gv
            } else {
                eval3(g.kind, fa, fb, fc)
            };
            if let FaultSite::Output(n) = self.fault.site {
                if n.index() == i {
                    fv = Tv::of(self.fault.polarity.value());
                }
            }
            self.good[i] = gv;
            self.faulty[i] = fv;
        }
    }

    fn test_found(&self) -> bool {
        self.netlist.outputs().nets().iter().any(|&n| {
            let (g, f) = (self.good[n.index()], self.faulty[n.index()]);
            g != Tv::X && f != Tv::X && g != f
        })
    }

    /// The net whose *good* value excites the fault.
    fn excitation_net(&self) -> NetId {
        match self.fault.site {
            FaultSite::Output(n) => n,
            FaultSite::InputPin(n, p) => self.netlist.gates()[n.index()].pins[p as usize],
        }
    }

    fn excited(&self) -> Option<bool> {
        let site = self.excitation_net().index();
        match self.good[site] {
            Tv::X => None,
            v => Some(v != Tv::of(self.fault.polarity.value())),
        }
    }

    /// The classic X-path check: once the fault is excited, some gate
    /// carrying D (or sitting on the D-frontier) must still reach a
    /// primary output through a chain of X-valued nets — otherwise no
    /// further assignment can propagate the fault and the whole branch
    /// is doomed. Sound: pruned subtrees contain no test, so verdicts
    /// and the first test found are unchanged; only wasted backtracks
    /// disappear.
    fn x_path_exists(&self) -> bool {
        let gates = self.netlist.gates();
        let mut seen = vec![false; gates.len()];
        let mut queue: Vec<u32> = Vec::new();
        for (i, slot) in seen.iter_mut().enumerate() {
            let (g, f) = (self.good[i], self.faulty[i]);
            if g != Tv::X && f != Tv::X && g != f {
                *slot = true;
                queue.push(i as u32);
            }
        }
        // A pin fault can put D on the faulted gate's input without any
        // net carrying D: seed the faulted gate itself when its output is
        // still open.
        if let FaultSite::InputPin(n, _) = self.fault.site {
            let i = n.index();
            if !seen[i] && (self.good[i] == Tv::X || self.faulty[i] == Tv::X) {
                if self.is_po[i] {
                    return true;
                }
                seen[i] = true;
                queue.push(i as u32);
            }
        }
        while let Some(n) = queue.pop() {
            for &r in &self.readers[n as usize] {
                let ri = r as usize;
                if seen[ri] || (self.good[ri] != Tv::X && self.faulty[ri] != Tv::X) {
                    continue;
                }
                if self.is_po[ri] {
                    return true;
                }
                seen[ri] = true;
                queue.push(r);
            }
        }
        false
    }

    /// Picks the next objective `(net, value)` or `None` if the search must
    /// backtrack.
    fn objective(&self) -> Option<(NetId, bool)> {
        match self.excited() {
            None => {
                let want = self.fault.polarity == Polarity::Sa0;
                Some((self.excitation_net(), want))
            }
            Some(false) => None,
            Some(true) => {
                if !self.x_path_exists() {
                    return None;
                }
                self.d_frontier_objective()
            }
        }
    }

    fn d_frontier_objective(&self) -> Option<(NetId, bool)> {
        let gates = self.netlist.gates();
        for (i, g) in gates.iter().enumerate() {
            if g.kind.arity() == 0 {
                continue;
            }
            let out_undef = self.good[i] == Tv::X || self.faulty[i] == Tv::X;
            if !out_undef {
                continue;
            }
            // Does any input carry D/D̄ (considering pin overrides)?
            let mut has_d = false;
            for (p, &src) in g.inputs().iter().enumerate() {
                let gv = self.good[src.index()];
                let fv = self.faulty_pin(i, p, self.faulty[src.index()]);
                if gv != Tv::X && fv != Tv::X && gv != fv {
                    has_d = true;
                }
            }
            if !has_d {
                continue;
            }
            // Objective: set an X input to the gate's non-controlling value.
            match g.kind {
                GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor => {
                    let noncontrol = matches!(g.kind, GateKind::And | GateKind::Nand);
                    // Unguided: the first X input. Guided: the X input
                    // whose non-controlling value is cheapest to justify
                    // (ties keep pin order, matching the unguided walk).
                    let mut best: Option<(NetId, u32)> = None;
                    for &src in g.inputs() {
                        if self.good[src.index()] != Tv::X {
                            continue;
                        }
                        match self.guidance {
                            None => return Some((src, noncontrol)),
                            Some(s) => {
                                let c = s.control_cost(src, noncontrol);
                                if best.is_none_or(|(_, bc)| c < bc) {
                                    best = Some((src, c));
                                }
                            }
                        }
                    }
                    if let Some((src, _)) = best {
                        return Some((src, noncontrol));
                    }
                }
                GateKind::Mux => {
                    let sel = g.pins[0];
                    let (a, b) = (g.pins[1], g.pins[2]);
                    let sel_v = self.good[sel.index()];
                    // D on the select line: make the data inputs differ.
                    let d_on_sel = {
                        let gv = self.good[sel.index()];
                        let fv = self.faulty_pin(i, 0, self.faulty[sel.index()]);
                        gv != Tv::X && fv != Tv::X && gv != fv
                    };
                    if d_on_sel {
                        if self.good[a.index()] == Tv::X {
                            return Some((a, true));
                        }
                        if self.good[b.index()] == Tv::X {
                            return Some((b, false));
                        }
                    } else if sel_v == Tv::X {
                        // D on a data input: steer the select toward it.
                        let d_on_a = {
                            let gv = self.good[a.index()];
                            let fv = self.faulty_pin(i, 1, self.faulty[a.index()]);
                            gv != Tv::X && fv != Tv::X && gv != fv
                        };
                        return Some((sel, d_on_a));
                    }
                }
                GateKind::Buf
                | GateKind::Not
                | GateKind::Dff
                | GateKind::Input
                | GateKind::Const0
                | GateKind::Const1 => {}
            }
        }
        None
    }

    /// Maps an objective back to an unassigned PI.
    fn backtrace(&self, mut net: NetId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let g = &self.netlist.gates()[net.index()];
            match g.kind {
                GateKind::Input => {
                    let pos = self.pi_pos[net.index()].expect("input");
                    return if self.pi[pos] == Tv::X {
                        Some((pos, value))
                    } else {
                        None
                    };
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Buf | GateKind::Dff => net = g.pins[0],
                GateKind::Not => {
                    value = !value;
                    net = g.pins[0];
                }
                GateKind::Nand | GateKind::Nor => {
                    let inner = !value;
                    // Inner AND (NAND) needs every pin at 1; inner OR
                    // (NOR) needs every pin at 0.
                    let all_needed = if g.kind == GateKind::Nand {
                        inner
                    } else {
                        !inner
                    };
                    let pick = self.pick_pin(g.pins[0], g.pins[1], inner, all_needed);
                    if self.good[pick.index()] != Tv::X {
                        return None;
                    }
                    value = inner;
                    net = pick;
                }
                GateKind::And | GateKind::Or => {
                    let all_needed = if g.kind == GateKind::And {
                        value
                    } else {
                        !value
                    };
                    let pick = self.pick_pin(g.pins[0], g.pins[1], value, all_needed);
                    if self.good[pick.index()] != Tv::X {
                        return None;
                    }
                    net = pick;
                }
                GateKind::Xor | GateKind::Xnor => {
                    let (a, b) = (g.pins[0], g.pins[1]);
                    let (pick, other) = if self.good[a.index()] == Tv::X {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    if self.good[pick.index()] != Tv::X {
                        return None;
                    }
                    let invert = g.kind == GateKind::Xnor;
                    value = match self.good[other.index()] {
                        Tv::X => value,
                        Tv::One => !value ^ invert,
                        Tv::Zero => value ^ invert,
                    };
                    net = pick;
                }
                GateKind::Mux => {
                    let sel = g.pins[0];
                    match self.good[sel.index()] {
                        Tv::X => net = sel, // decide the select first (value reused)
                        Tv::One => net = g.pins[1],
                        Tv::Zero => net = g.pins[2],
                    }
                }
            }
        }
    }

    fn run(mut self) -> PodemOutcome {
        let mut decisions: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;
        loop {
            self.imply();
            if self.test_found() {
                let assignment = self
                    .pi
                    .iter()
                    .map(|&v| match v {
                        Tv::Zero => Some(false),
                        Tv::One => Some(true),
                        Tv::X => None,
                    })
                    .collect();
                return PodemOutcome::Test(assignment);
            }
            let next = if self.requirement_violated() {
                None
            } else {
                self.objective().and_then(|(net, v)| self.backtrace(net, v))
            };
            match next {
                Some((pos, v)) => {
                    self.pi[pos] = Tv::of(v);
                    decisions.push((pos, v, false));
                }
                None => {
                    // Backtrack: flip the most recent unflipped decision.
                    backtracks += 1;
                    if backtracks > self.limit {
                        return PodemOutcome::Aborted;
                    }
                    loop {
                        match decisions.pop() {
                            Some((pos, v, false)) => {
                                self.pi[pos] = Tv::of(!v);
                                decisions.push((pos, !v, true));
                                break;
                            }
                            Some((pos, _, true)) => {
                                self.pi[pos] = Tv::X;
                            }
                            None => return PodemOutcome::Untestable,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_fault::FaultUniverse;
    use warpstl_netlist::Builder;

    fn check_test_detects(netlist: &Netlist, fault: Fault, pis: &[Option<bool>]) {
        // Verify with the fault simulator: the vector (X -> 0) must detect
        // the fault.
        use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig};
        let u = FaultUniverse::enumerate(netlist);
        let mut list = FaultList::new(&u);
        let mut p = warpstl_netlist::PatternSeq::new(netlist.inputs().width());
        let bits: Vec<bool> = pis.iter().map(|b| b.unwrap_or(false)).collect();
        p.push_bits(0, &bits);
        fault_simulate(netlist, &p, &mut list, &FaultSimConfig::default());
        // The fault (or its equivalence representative) must be detected.
        let detected: Vec<Fault> = list
            .detected()
            .map(|(id, _, _, _)| list.fault(id))
            .collect();
        assert!(!detected.is_empty(), "vector detects nothing for {fault}");
    }

    #[test]
    fn and_or_chain_tests() {
        let mut b = Builder::new("c");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let a = b.and(x, y);
        let o = b.or(a, z);
        b.output("o", o);
        let n = b.finish();
        let podem = Podem::new(&n);
        // a/SA0 requires x=y=1 and z=0 for propagation.
        let f = Fault::new(FaultSite::Output(a), Polarity::Sa0);
        match podem.generate(f) {
            PodemOutcome::Test(pis) => {
                assert_eq!(pis, vec![Some(true), Some(true), Some(false)]);
                check_test_detects(&n, f, &pis);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untestable_redundant_fault() {
        // y = x OR (NOT x) is constant 1: y/SA1 is undetectable.
        let mut b = Builder::new("r");
        let x = b.input("x");
        let nx = b.not(x);
        let y = b.or(x, nx);
        b.output("y", y);
        let n = b.finish();
        let podem = Podem::new(&n);
        let f = Fault::new(FaultSite::Output(y), Polarity::Sa1);
        assert_eq!(podem.generate(f), PodemOutcome::Untestable);
        // ...but y/SA0 is trivially testable.
        let f = Fault::new(FaultSite::Output(y), Polarity::Sa0);
        assert!(matches!(podem.generate(f), PodemOutcome::Test(_)));
    }

    #[test]
    fn pin_faults_are_targeted() {
        let mut b = Builder::new("p");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and(x, y);
        let o = b.or(a, y); // y fans out: pin faults distinct
        b.output("o", o);
        let n = b.finish();
        let podem = Podem::new(&n);
        // Fault on the AND's y-pin SA1: need y=0 (via that pin stuck 1,
        // x=1 makes a=1 faulty vs 0 good), and o propagates when y=0.
        let f = Fault::new(FaultSite::InputPin(a, 1), Polarity::Sa1);
        match podem.generate(f) {
            PodemOutcome::Test(pis) => {
                assert_eq!(pis[0], Some(true));
                assert_eq!(pis[1], Some(false));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xor_propagation() {
        let mut b = Builder::new("x");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        let n = b.finish();
        let podem = Podem::new(&n);
        for pol in Polarity::BOTH {
            let f = Fault::new(FaultSite::Output(NetId(0)), pol);
            match podem.generate(f) {
                PodemOutcome::Test(pis) => check_test_detects(&n, f, &pis),
                other => panic!("{pol}: {other:?}"),
            }
        }
    }

    #[test]
    fn adder_faults_all_testable() {
        let mut b = Builder::new("add4");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let podem = Podem::new(&n);
        let mut tested = 0;
        let mut untestable = 0;
        for &f in u.faults() {
            match podem.generate(f) {
                PodemOutcome::Test(pis) => {
                    check_test_detects(&n, f, &pis);
                    tested += 1;
                }
                PodemOutcome::Untestable => untestable += 1,
                PodemOutcome::Aborted => panic!("aborted on {f}"),
            }
        }
        // Every fault gets a verdict; the only untestable ones sit in the
        // redundant logic around the constant-0 carry-in of stage 0.
        assert_eq!(tested + untestable, u.collapsed_len());
        assert!(untestable <= 3, "untestable {untestable}");
        assert!(tested > u.collapsed_len() * 9 / 10);
    }

    #[test]
    fn guided_adder_faults_all_testable_and_verified() {
        // SCOAP guidance changes search order, never verdicts: the same
        // faults are testable, and every guided vector really detects its
        // fault under simulation.
        let mut b = Builder::new("add4g");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let scoap = warpstl_analyze::Scoap::compute(&n);
        let plain = Podem::new(&n);
        let guided = Podem::new(&n).with_guidance(&scoap);
        for &f in u.faults() {
            let pv = plain.generate(f);
            let gv = guided.generate(f);
            match (&pv, &gv) {
                (PodemOutcome::Test(_), PodemOutcome::Test(pis)) => {
                    check_test_detects(&n, f, pis);
                }
                (PodemOutcome::Untestable, PodemOutcome::Untestable) => {}
                other => panic!("verdict diverged on {f}: {other:?}"),
            }
        }
    }

    #[test]
    fn guided_search_steers_toward_cheap_pins() {
        // o = OR(deep, easy): justifying o = 1 should pick the cheap
        // input, not the 4-gate chain, when guidance is on.
        let mut b = Builder::new("steer");
        let x = b.input("x");
        let easy = b.input("easy");
        let mut deep = x;
        for i in 0..4 {
            let t = b.input(&format!("t{i}"));
            deep = b.and(deep, t);
        }
        let o = b.or(deep, easy);
        b.output("o", o);
        let n = b.finish();
        let scoap = warpstl_analyze::Scoap::compute(&n);
        let guided = Podem::new(&n).with_guidance(&scoap);
        // o/SA0 is excited by o = 1; the guided search should satisfy it
        // through `easy` alone, leaving the deep chain's inputs X.
        let f = Fault::new(FaultSite::Output(o), Polarity::Sa0);
        match guided.generate(f) {
            PodemOutcome::Test(pis) => {
                assert_eq!(pis[1], Some(true), "easy input drives the OR");
                let assigned = pis.iter().filter(|p| p.is_some()).count();
                assert_eq!(assigned, 1, "deep chain left as don't-care: {pis:?}");
                check_test_detects(&n, f, &pis);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn implications_fast_path_proves_redundancy_without_search() {
        // y = x OR (NOT x) is constant 1: the activation literal of y/SA1
        // is impossible, so the implication-armed generator answers
        // Untestable with zero backtracks — where the plain search at the
        // same (zero) backtrack budget can only abort.
        let mut b = Builder::new("r");
        let x = b.input("x");
        let nx = b.not(x);
        let y = b.or(x, nx);
        b.output("y", y);
        let n = b.finish();
        let imp = warpstl_analyze::Implications::compute(&n);
        let f = Fault::new(FaultSite::Output(y), Polarity::Sa1);
        let plain = Podem::new(&n).with_backtrack_limit(0);
        assert_eq!(plain.generate(f), PodemOutcome::Aborted);
        let armed = Podem::new(&n)
            .with_backtrack_limit(0)
            .with_implications(&imp);
        assert_eq!(armed.generate(f), PodemOutcome::Untestable);
        // The testable polarity is untouched by the fast path.
        let f0 = Fault::new(FaultSite::Output(y), Polarity::Sa0);
        assert!(matches!(
            Podem::new(&n).with_implications(&imp).generate(f0),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn implication_seeding_preserves_verdicts() {
        // Seeded necessary assignments change vectors and search order,
        // never verdicts — and every seeded vector still detects.
        let mut b = Builder::new("add4i");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let imp = warpstl_analyze::Implications::compute(&n);
        let plain = Podem::new(&n);
        let armed = Podem::new(&n).with_implications(&imp);
        for &f in u.faults() {
            let pv = plain.generate(f);
            let av = armed.generate(f);
            match (&pv, &av) {
                (PodemOutcome::Test(_), PodemOutcome::Test(pis)) => {
                    check_test_detects(&n, f, pis);
                }
                (PodemOutcome::Untestable, PodemOutcome::Untestable) => {}
                other => panic!("verdict diverged on {f}: {other:?}"),
            }
        }
    }

    #[test]
    fn mux_select_fault() {
        let mut b = Builder::new("m");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mux(s, x, y);
        b.output("m", m);
        let n = b.finish();
        let podem = Podem::new(&n);
        let f = Fault::new(FaultSite::Output(NetId(0)), Polarity::Sa0);
        match podem.generate(f) {
            PodemOutcome::Test(pis) => {
                assert_eq!(pis[0], Some(true)); // s must be 1 to excite
                check_test_detects(&n, f, &pis);
            }
            other => panic!("{other:?}"),
        }
    }
}
