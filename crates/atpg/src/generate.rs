//! The ATPG loop: PODEM per fault with fault-simulation dropping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
use warpstl_netlist::{Netlist, PatternSeq};

use crate::podem::{Podem, PodemOutcome};

/// How the ATPG loop credits a generated pattern against the fault list.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AtpgDropMode {
    /// Fault-simulate every new pattern against the whole remaining list
    /// (full dropping): the resulting pattern set is near-minimal.
    #[default]
    FullFaultSim,
    /// Credit only the *targeted* fault. Each collapsed fault gets its own
    /// pattern, so the set carries heavy incidental redundancy — the
    /// regime the paper's TPGEN/SFU_IMM programs are in (their compaction
    /// method removes 41–76 % of the ATPG-derived SBs, and the SFU_IMM
    /// reverse-order trick only has an effect on redundant sets).
    TargetOnly,
}

/// Configuration of an ATPG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgConfig {
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: usize,
    /// Seed for don't-care filling (deterministic).
    pub seed: u64,
    /// Stop after this many patterns (0 = unlimited).
    pub max_patterns: usize,
    /// Pattern-crediting mode.
    pub drop_mode: AtpgDropMode,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            backtrack_limit: 200,
            seed: 0xA7B6_C5D4,
            max_patterns: 0,
            drop_mode: AtpgDropMode::FullFaultSim,
        }
    }
}

/// The result of an ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The generated patterns, in generation order (flat input-bit vectors,
    /// don't-cares filled with seeded random bits).
    pub patterns: Vec<Vec<bool>>,
    /// The raw PODEM assignments behind each pattern (`None` = don't-care).
    /// The instruction converter uses these to decide which bits an
    /// instruction actually has to drive.
    pub assignments: Vec<Vec<Option<bool>>>,
    /// Collapsed faults the pattern set detects (per fault simulation).
    pub detected: usize,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total collapsed faults targeted.
    pub total: usize,
    /// Weighted coverage over the full fault universe.
    coverage: f64,
}

impl AtpgResult {
    /// The achieved fault coverage over the full (uncollapsed) universe.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// The patterns as a timestamped sequence (cc = pattern index).
    #[must_use]
    pub fn to_pattern_seq(&self, width: usize) -> PatternSeq {
        let mut seq = PatternSeq::new(width);
        for (i, p) in self.patterns.iter().enumerate() {
            seq.push_bits(i as u64, p);
        }
        seq
    }
}

/// Runs the ATPG flow on a combinational netlist: target every collapsed
/// fault with PODEM, X-fill with seeded random bits, and fault-simulate each
/// new pattern against the remaining fault list so already-covered faults
/// are dropped.
///
/// # Panics
///
/// Panics if the netlist is sequential (see [`Podem::new`]).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[must_use]
pub fn generate_patterns(netlist: &Netlist, config: &AtpgConfig) -> AtpgResult {
    let universe = FaultUniverse::enumerate(netlist);
    let mut list = FaultList::new(&universe);
    let podem = Podem::new(netlist).with_backtrack_limit(config.backtrack_limit);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let width = netlist.inputs().width();

    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let mut assignments: Vec<Vec<Option<bool>>> = Vec::new();
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let sim_cfg = FaultSimConfig::default();

    for id in 0..list.len() {
        if config.max_patterns > 0 && patterns.len() >= config.max_patterns {
            break;
        }
        if !matches!(list.status(id), warpstl_fault::FaultStatus::Undetected) {
            continue;
        }
        let fault = list.fault(id);
        match podem.generate(fault) {
            PodemOutcome::Test(assignment) => {
                let bits: Vec<bool> = assignment
                    .iter()
                    .map(|b| b.unwrap_or_else(|| rng.gen()))
                    .collect();
                match config.drop_mode {
                    AtpgDropMode::FullFaultSim => {
                        let mut seq = PatternSeq::new(width);
                        seq.push_bits(patterns.len() as u64, &bits);
                        fault_simulate(netlist, &seq, &mut list, &sim_cfg);
                    }
                    AtpgDropMode::TargetOnly => {
                        list.begin_run();
                        list.mark_detected(id, patterns.len() as u64, patterns.len());
                    }
                }
                patterns.push(bits);
                assignments.push(assignment);
            }
            PodemOutcome::Untestable => untestable += 1,
            PodemOutcome::Aborted => aborted += 1,
        }
    }

    // In target-only mode the loop's ledger undercounts what the patterns
    // really detect; measure the set's true coverage with one fault
    // simulation at the end.
    if config.drop_mode == AtpgDropMode::TargetOnly && !patterns.is_empty() {
        let mut seq = PatternSeq::new(width);
        for (i, bits) in patterns.iter().enumerate() {
            seq.push_bits(i as u64, bits);
        }
        list = FaultList::new(&universe);
        fault_simulate(netlist, &seq, &mut list, &sim_cfg);
    }

    let detected = list.detected().count();
    AtpgResult {
        patterns,
        assignments,
        detected,
        untestable,
        aborted,
        total: list.len(),
        coverage: list.coverage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    fn adder(width: usize) -> Netlist {
        let mut b = Builder::new("add");
        let x = b.input_bus("x", width);
        let y = b.input_bus("y", width);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        b.finish()
    }

    #[test]
    fn adder_reaches_full_coverage() {
        let n = adder(6);
        let r = generate_patterns(&n, &AtpgConfig::default());
        // The constant-0 carry-in of stage 0 leaves a couple of genuinely
        // redundant (untestable) faults; everything else is covered.
        assert!(r.coverage() > 0.96, "coverage {}", r.coverage());
        assert_eq!(r.aborted, 0);
        assert!(r.untestable <= 3, "untestable {}", r.untestable);
        // Far fewer patterns than faults, thanks to dropping.
        assert!(
            r.patterns.len() * 3 < r.total,
            "{} patterns",
            r.patterns.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let n = adder(4);
        let a = generate_patterns(&n, &AtpgConfig::default());
        let b = generate_patterns(&n, &AtpgConfig::default());
        assert_eq!(a.patterns, b.patterns);
        let c = generate_patterns(
            &n,
            &AtpgConfig {
                seed: 99,
                ..AtpgConfig::default()
            },
        );
        // Different X-fill, same coverage.
        assert!((a.coverage() - c.coverage()).abs() < 1e-9);
    }

    #[test]
    fn max_patterns_caps_generation() {
        let n = adder(8);
        let r = generate_patterns(
            &n,
            &AtpgConfig {
                max_patterns: 3,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(r.patterns.len(), 3);
        assert!(r.coverage() < 1.0);
    }

    #[test]
    fn redundant_logic_is_reported_untestable() {
        let mut b = Builder::new("r");
        let x = b.input("x");
        let nx = b.not(x);
        let y = b.or(x, nx); // constant 1
        let z = b.input("z");
        let o = b.and(y, z);
        b.output("o", o);
        let n = b.finish();
        let r = generate_patterns(&n, &AtpgConfig::default());
        assert!(r.untestable > 0);
        assert!(r.coverage() < 1.0);
    }

    #[test]
    fn pattern_seq_round_trip() {
        let n = adder(4);
        let r = generate_patterns(&n, &AtpgConfig::default());
        let seq = r.to_pattern_seq(n.inputs().width());
        assert_eq!(seq.len(), r.patterns.len());
        for (i, p) in r.patterns.iter().enumerate() {
            for (j, &b) in p.iter().enumerate() {
                assert_eq!(seq.bit(i, j), b);
            }
        }
    }

    #[test]
    fn sp_core_atpg_smoke() {
        // The real SP module: cap patterns for test speed; expect meaningful
        // coverage from a few patterns.
        let n = warpstl_netlist::modules::ModuleKind::SpCore.build();
        let r = generate_patterns(
            &n,
            &AtpgConfig {
                max_patterns: 20,
                backtrack_limit: 50,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(r.patterns.len(), 20);
        assert!(r.coverage() > 0.2, "coverage {}", r.coverage());
    }
}
