#![warn(missing_docs)]
//! # warpstl-atpg
//!
//! Automatic test pattern generation for the gate-level modules, plus the
//! "parser tool" that converts ATPG patterns into GPU instructions.
//!
//! The paper's TPGEN and SFU_IMM test programs are built from patterns
//! produced by a commercial ATPG tool and converted — *partially*, "due to a
//! lack of fully equivalent instructions" — into SASS. This crate implements
//! the same flow from scratch:
//!
//! - [`Podem`] — the classic PODEM algorithm (5-valued D-algebra,
//!   objective/backtrace/imply with a backtrack limit) over
//!   [`warpstl-netlist`](warpstl_netlist) combinational netlists;
//! - [`generate_patterns`] — the ATPG loop: target each collapsed fault,
//!   fault-simulate each new pattern against the remaining fault list
//!   (dropping), with deterministic seeded X-fill;
//! - [`convert`] — pattern→instruction conversion for the SP core and SFU
//!   pattern encodings, reporting unconvertible patterns exactly like the
//!   paper's parser.
//!
//! # Examples
//!
//! ```
//! use warpstl_atpg::{generate_patterns, AtpgConfig};
//! use warpstl_netlist::Builder;
//!
//! let mut b = Builder::new("demo");
//! let x = b.input_bus("x", 4);
//! let y = b.input_bus("y", 4);
//! let (s, c) = b.add(&x, &y);
//! b.output_bus("s", &s);
//! b.output("c", c);
//! let netlist = b.finish();
//!
//! let result = generate_patterns(&netlist, &AtpgConfig::default());
//! assert!(result.coverage() > 0.95, "adders are fully testable");
//! assert!(!result.patterns.is_empty());
//! ```

pub mod convert;
mod generate;
mod podem;

pub use generate::{generate_patterns, AtpgConfig, AtpgDropMode, AtpgResult};
pub use podem::{Podem, PodemOutcome};
