//! Cross-check: no fault the static implication engine proves untestable
//! on the bundled target modules may be contradicted by PODEM — a
//! [`PodemOutcome::Test`] outcome for a proven fault is a soundness bug
//! in the proof rules, and the acceptance bar is zero contradictions.
//!
//! Two tiers of rigor, both earning their verdicts by actual search
//! (never the impossible-literal fast path, which would answer from the
//! very proof under test):
//!
//! - `decoder_unit` is small enough to settle *every* proof with a
//!   *plain* search — no implication machinery at all — and every one
//!   must come back [`PodemOutcome::Untestable`].
//! - The three large modules use [`Podem::with_implication_seeding`]
//!   (closure seeding plus early conflict detection; the soundness of
//!   that closure is itself validated against exhaustive simulation by
//!   the analyze crate's property tests, independently of the proof
//!   rules checked here). Some propagation-side proofs rest on reasoning
//!   a bounded branch-and-bound cannot replay in test time, so a small
//!   backtrack budget is used, aborts are tolerated, and the assertions
//!   are: zero `Test` outcomes anywhere, and a supermajority of proofs
//!   positively confirmed `Untestable`.

use warpstl_analyze::{Implications, Untestability};
use warpstl_atpg::{Podem, PodemOutcome};
use warpstl_fault::{Fault, FaultSite, Polarity};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{NetId, Netlist};

/// Runs `podem` over every proven-untestable fault site of `netlist`,
/// panicking on any `Test` outcome; returns `(untestable, aborted)`.
fn sweep(name: &str, netlist: &Netlist, unt: &Untestability, podem: &Podem<'_>) -> (usize, usize) {
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let mut check = |fault: Fault| match podem.generate(fault) {
        PodemOutcome::Untestable => untestable += 1,
        PodemOutcome::Aborted => aborted += 1,
        PodemOutcome::Test(pis) => {
            panic!("{name}: {fault} proven untestable but PODEM found {pis:?}")
        }
    };
    for (i, g) in netlist.gates().iter().enumerate() {
        let id = NetId(i as u32);
        for pol in Polarity::BOTH {
            if unt.output_untestable(i, pol.value()) {
                check(Fault::new(FaultSite::Output(id), pol));
            }
            for p in 0..g.kind.arity() as u8 {
                if unt.pin_untestable(i, p as usize, pol.value()) {
                    check(Fault::new(FaultSite::InputPin(id, p), pol));
                }
            }
        }
    }
    assert_eq!(
        untestable + aborted,
        unt.proven_count(),
        "{name}: every proof site must be enumerable"
    );
    (untestable, aborted)
}

#[test]
fn decoder_unit_proofs_all_survive_plain_podem() {
    let netlist = ModuleKind::DecoderUnit.build();
    let imp = Implications::compute(&netlist);
    let unt = Untestability::compute(&netlist, &imp);
    assert!(unt.proven_count() > 0, "fixture must exercise the rules");
    let plain = Podem::new(&netlist).with_backtrack_limit(100_000);
    let (untestable, aborted) = sweep("decoder_unit", &netlist, &unt, &plain);
    assert_eq!(aborted, 0, "decoder_unit proofs must settle exhaustively");
    assert_eq!(untestable, unt.proven_count());
}

#[test]
fn large_module_proofs_are_never_contradicted_by_search() {
    for kind in [ModuleKind::SpCore, ModuleKind::Sfu, ModuleKind::Fp32] {
        let netlist = kind.build();
        let imp = Implications::compute(&netlist);
        let unt = Untestability::compute(&netlist, &imp);
        let podem = Podem::new(&netlist)
            .with_implication_seeding(&imp)
            .with_backtrack_limit(96);
        let (untestable, aborted) = sweep(kind.name(), &netlist, &unt, &podem);
        // `sweep` already panicked on any contradiction; additionally a
        // supermajority of proofs must be positively re-derived by the
        // search, so the zero-contradiction claim is not carried by
        // aborts.
        assert!(
            untestable * 5 >= unt.proven_count() * 3,
            "{}: only {untestable}/{} proofs re-derived ({aborted} aborted)",
            kind.name(),
            unt.proven_count()
        );
    }
}
