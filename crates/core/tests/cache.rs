//! End-to-end cache behavior through the full compaction pipeline: a warm
//! rerun replays stored artifacts and reproduces the cold report
//! byte-for-byte, and every corruption mode — truncation, a flipped
//! checksum byte, a bumped format version — degrades to a recompute with
//! the right `cache.miss` counters, never an error.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;
use warpstl_obs::{names, Recorder};
use warpstl_programs::generators::{generate_imm, ImmConfig};
use warpstl_programs::Ptp;
use warpstl_store::{Store, FORMAT_VERSION, MAGIC};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("warpstl-cache-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn test_ptp() -> Ptp {
    generate_imm(&ImmConfig {
        sb_count: 8,
        ..ImmConfig::default()
    })
}

/// What one cached compaction run observed.
struct RunObs {
    metrics: warpstl_obs::Metrics,
    span_names: Vec<String>,
}

/// Compacts the IMM PTP against a fresh DU context with a store opened on
/// `dir`, returning the deterministic report JSON, the recorded
/// observability, and the store's session stats.
fn run_with_cache(dir: &Path) -> (String, RunObs, warpstl_store::SessionStats) {
    let store = Arc::new(Store::open(dir).unwrap());
    let rec = Arc::new(Recorder::new());
    let compactor = Compactor {
        store: Some(store.clone()),
        obs: Some(rec.clone()),
        ..Compactor::default()
    };
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let out = compactor.compact(&test_ptp(), &mut ctx).unwrap();
    let stats = store.session();
    let obs = RunObs {
        metrics: rec.metrics(),
        span_names: rec.spans().into_iter().map(|s| s.name).collect(),
    };
    (out.report.to_json(), obs, stats)
}

/// Applies `mutate` to every cache entry file under `dir`, returning how
/// many files were touched.
fn mutate_entries(dir: &Path, mutate: impl Fn(&mut Vec<u8>)) -> usize {
    let mut touched = 0;
    for dent in fs::read_dir(dir).unwrap() {
        let path = dent.unwrap().path();
        let ext = path.extension().and_then(|e| e.to_str());
        if !matches!(ext, Some("ana" | "fsr")) {
            continue;
        }
        let mut bytes = fs::read(&path).unwrap();
        mutate(&mut bytes);
        fs::write(&path, &bytes).unwrap();
        touched += 1;
    }
    touched
}

#[test]
fn warm_rerun_is_byte_identical_and_hits_the_cache() {
    let dir = temp_dir("warm");

    let (cold_json, cold_rec, cold_stats) = run_with_cache(&dir);
    assert!(cold_stats.writes > 0, "cold run must populate the cache");

    let (warm_json, warm_rec, warm_stats) = run_with_cache(&dir);
    assert_eq!(warm_json, cold_json, "warm report must be byte-identical");
    assert!(warm_stats.hits > 0, "warm run must hit the cache");
    assert_eq!(warm_stats.corrupt, 0);

    // The counters surface on the report's metric delta (via the recorder),
    // so callers see cache traffic without reaching into the store.
    assert!(warm_rec.metrics.counter(names::CACHE_HIT) >= 1);
    // The warm run replayed at least one fault sim instead of running it.
    assert!(warm_rec.span_names.iter().any(|s| s == "store.replay"));
    assert!(warm_rec.span_names.iter().any(|s| s == "store.read"));
    // The cold run recorded its writes under the same scheme.
    assert!(cold_rec.metrics.counter(names::CACHE_WRITE) >= 1);
    assert!(cold_rec.span_names.iter().any(|s| s == "store.write"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entries_degrade_to_recompute() {
    let dir = temp_dir("truncate");
    let (cold_json, _, _) = run_with_cache(&dir);

    let touched = mutate_entries(&dir, |bytes| bytes.truncate(bytes.len() / 2));
    assert!(touched > 0);

    let (json, rec, stats) = run_with_cache(&dir);
    assert_eq!(json, cold_json, "degraded run must reproduce the report");
    assert!(stats.corrupt > 0, "truncation must count as corrupt misses");
    assert!(rec.metrics.counter(names::CACHE_MISS) >= 1);
    assert!(rec.metrics.counter(names::CACHE_MISS_CORRUPT) >= 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_checksum_byte_degrades_to_recompute() {
    let dir = temp_dir("checksum");
    let (cold_json, _, _) = run_with_cache(&dir);

    // Header layout: magic 8 | version 4 | kind 1 | len 8 | checksum 16.
    // Byte 25 sits inside the stored checksum.
    let touched = mutate_entries(&dir, |bytes| bytes[25] ^= 0xff);
    assert!(touched > 0);

    let (json, rec, stats) = run_with_cache(&dir);
    assert_eq!(json, cold_json);
    assert!(stats.corrupt > 0);
    assert!(rec.metrics.counter(names::CACHE_MISS_CORRUPT) >= 1);
    // The recompute rewrote valid entries; a final rerun hits again.
    let (rewarm_json, _, rewarm_stats) = run_with_cache(&dir);
    assert_eq!(rewarm_json, cold_json);
    assert!(rewarm_stats.hits > 0);
    assert_eq!(rewarm_stats.corrupt, 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bumped_format_version_degrades_to_recompute() {
    let dir = temp_dir("version");
    let (cold_json, _, _) = run_with_cache(&dir);

    let touched = mutate_entries(&dir, |bytes| {
        assert_eq!(&bytes[..8], &MAGIC);
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    });
    assert!(touched > 0);

    let (json, rec, stats) = run_with_cache(&dir);
    assert_eq!(json, cold_json);
    assert!(stats.version_mismatch > 0);
    assert_eq!(stats.corrupt, 0, "version skew is not corruption");
    assert!(rec.metrics.counter(names::CACHE_MISS_VERSION) >= 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stl_flow_shares_hits_across_ptps_of_one_module() {
    // Two different PTPs against the same module share module-level
    // artifacts: the analyze gate consults one cached report per netlist,
    // so the second PTP's gate hits the entry the first compaction wrote
    // earlier in the same process.
    let dir = temp_dir("share");
    let store = Arc::new(Store::open(&dir).unwrap());
    let rec = Arc::new(Recorder::new());
    let compactor = Compactor {
        store: Some(store.clone()),
        obs: Some(rec.clone()),
        ..Compactor::default()
    };
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let a = test_ptp();
    let b = generate_imm(&ImmConfig {
        sb_count: 8,
        seed: 0x5151_5151,
        ..ImmConfig::default()
    });
    compactor.compact(&a, &mut ctx).unwrap();
    let before = store.session();
    compactor.compact(&b, &mut ctx).unwrap();
    let after = store.session();
    assert!(
        after.hits > before.hits,
        "second PTP must reuse module-level artifacts ({} -> {})",
        before.hits,
        after.hits
    );
    let _ = fs::remove_dir_all(&dir);
}
