#![warn(missing_docs)]
//! # warpstl-core
//!
//! The paper's contribution: a compaction method for Self-Test Libraries
//! targeting GPUs that needs only **one logic simulation and one fault
//! simulation per test program**.
//!
//! The five stages (Fig. 1 of the paper):
//!
//! 1. **PTP partitioning** — basic blocks, control-flow graph, and the
//!    Admissible Regions for Compaction (everything outside parametric
//!    loops); from [`warpstl-programs`](warpstl_programs).
//! 2. **Logic tracing** — one run of the PTP on the MiniGrip GPU model with
//!    the hardware monitor on, producing the RT-level tracing report and
//!    the gate-level per-cycle test-pattern report.
//! 3. **Fault detection analysis and labeling** — one optimized gate-level
//!    fault simulation of the target module (module-level observability,
//!    shared dropping fault list across the STL), then the instruction
//!    labeling algorithm (Fig. 2): an instruction is *essential* iff one of
//!    its warps' clock cycles newly detected a fault.
//! 4. **PTP reduction** — remove every Small Block whose instructions are
//!    all unessential (Fig. 3), with register-liveness protection, branch
//!    target remapping, and relocation of the removed SBs' input data.
//! 5. **PTP reassembling** — emit the compacted PTP and evaluate its fault
//!    coverage with a final fault simulation.
//!
//! Between reassembly and evaluation sits a mandatory **static
//! verification gate** ([`warpstl_verify`]): the compacted PTP is linted
//! for dangling register uses, broken `SSY`/`SYNC` pairing, inadmissible
//! removals, memory races and relocation gaps, and a failure aborts the
//! run with [`CompactionError::Verify`] instead of an evaluated but
//! meaningless CPTP. Per-rule counts land in
//! [`CompactionReport::verify`](CompactionReport); the gate's wall time in
//! [`StageTimings::verify`](StageTimings).
//!
//! The [`baseline`] module implements the prior-art iterative compactor
//! (one fault simulation per candidate removal) the paper compares against.
//!
//! # Examples
//!
//! ```
//! use warpstl_core::Compactor;
//! use warpstl_programs::generators::{generate_imm, ImmConfig};
//! use warpstl_netlist::modules::ModuleKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ptp = generate_imm(&ImmConfig { sb_count: 12, ..ImmConfig::default() });
//! let compactor = Compactor::default();
//! let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
//! let outcome = compactor.compact(&ptp, &mut ctx)?;
//! assert!(outcome.compacted.size() <= ptp.size());
//! assert_eq!(outcome.report.fault_sim_runs, 1);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
mod context;
mod error;
pub mod jobs;
mod label;
mod pipeline;
mod reduce;
mod reorder;
mod report;
mod stl_flow;

// Re-exported so the CLI reaches the shared once-per-process
// environment-variable warning helper without depending on warpstl-sync
// directly (the helper lives at the bottom of the crate graph because the
// fault engine — below this crate — reads `WARPSTL_*` knobs too).
pub use warpstl_sync::env;

pub use context::ModuleContext;
pub use error::CompactionError;
pub use jobs::{
    analyze_job, compact_job, compact_stl_job, gpu_for_lanes, lint_job, netlist_by_name,
    stl_report_array, CompactJobResult, GateJobResult, JobError, JobOptions, StlJobResult,
};
pub use label::{label_instructions, Labels};
pub use pipeline::{CompactionOutcome, Compactor};
pub use reduce::{reduce_ptp, reduce_ptp_with, Reduction};
pub use reorder::{reorder_ptp, time_to_fraction, Reorder, ReorderError};
pub use report::{CompactionReport, PtpFeatures, StageTimings};
pub use stl_flow::{compact_stl, compact_stl_with, StlOutcome};
