//! Compaction reports: the rows of the paper's Tables I–III.

use std::fmt;
use std::time::Duration;

use warpstl_analyze::AnalyzeStats;
use warpstl_obs::Metrics;
use warpstl_verify::VerifyStats;

/// The features of a PTP before compaction — one row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct PtpFeatures {
    /// PTP name.
    pub name: String,
    /// Size in instructions.
    pub size: usize,
    /// Fraction of instructions inside the ARC.
    pub arc_fraction: f64,
    /// Duration in clock cycles.
    pub duration: u64,
    /// Standalone fault coverage (fresh fault list), in [0, 1].
    pub fault_coverage: f64,
}

impl fmt::Display for PtpFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>9} {:>7.1} {:>12} {:>7.2}",
            self.name,
            self.size,
            self.arc_fraction * 100.0,
            self.duration,
            self.fault_coverage * 100.0
        )
    }
}

/// Wall-clock time spent in each pipeline stage of one compaction.
///
/// `trace`, `fsim`, `label` and `reduce` partition
/// [`CompactionReport::compaction_time`] (the method's own cost — the
/// paper's last column); `eval` is the evaluation overhead outside it
/// (standalone coverage of the original and compacted programs, and the
/// compacted program's re-run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// The pre-simulation static netlist analysis gate (SCOAP + lints).
    pub analyze: Duration,
    /// Stage 2: the single traced logic simulation.
    pub trace: Duration,
    /// Stage 3a: the single fault simulation.
    pub fsim: Duration,
    /// Stage 3b: instruction labeling.
    pub label: Duration,
    /// Stages 4–5: Small-Block reduction and reassembly.
    pub reduce: Duration,
    /// The post-reduction static verification gate.
    pub verify: Duration,
    /// Post-compaction evaluation (standalone coverages, compacted re-run).
    pub eval: Duration,
}

impl StageTimings {
    /// The total across all stages, evaluation included.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.analyze + self.trace + self.fsim + self.label + self.reduce + self.verify + self.eval
    }

    /// Element-wise sum (used by [`CompactionReport::combined`]).
    #[must_use]
    pub fn merged(&self, other: &StageTimings) -> StageTimings {
        StageTimings {
            analyze: self.analyze + other.analyze,
            trace: self.trace + other.trace,
            fsim: self.fsim + other.fsim,
            label: self.label + other.label,
            reduce: self.reduce + other.reduce,
            verify: self.verify + other.verify,
            eval: self.eval + other.eval,
        }
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analyze {:?} | trace {:?} | fsim {:?} | label {:?} | reduce {:?} | verify {:?} | eval {:?}",
            self.analyze, self.trace, self.fsim, self.label, self.reduce, self.verify, self.eval
        )
    }
}

/// The result of compacting one PTP — one row of Table II/III.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionReport {
    /// PTP name.
    pub name: String,
    /// Original size in instructions.
    pub original_size: usize,
    /// Compacted size in instructions.
    pub compacted_size: usize,
    /// Original duration in clock cycles.
    pub original_duration: u64,
    /// Compacted duration in clock cycles.
    pub compacted_duration: u64,
    /// Standalone fault coverage before compaction, in [0, 1].
    pub fc_before: f64,
    /// Standalone fault coverage after compaction, in [0, 1].
    pub fc_after: f64,
    /// Small Blocks found / removed.
    pub sbs_total: usize,
    /// Small Blocks removed.
    pub sbs_removed: usize,
    /// Instructions labeled essential.
    pub essential_instructions: usize,
    /// Fault simulations used *by the compaction itself* (the paper's
    /// claim: exactly one).
    pub fault_sim_runs: usize,
    /// Logic simulations used by the compaction itself (exactly one).
    pub logic_sim_runs: usize,
    /// Fault classes of the target module statically proven untestable by
    /// the implication engine — excluded from the coverage denominator
    /// (and, with pruning on, from simulation).
    pub untestable: usize,
    /// Wall-clock time of the compaction (the paper's last column).
    pub compaction_time: Duration,
    /// Per-stage breakdown of where that time (plus evaluation) went.
    pub stage_timings: StageTimings,
    /// Per-rule diagnostic counts from the pre-simulation netlist analysis
    /// gate (a report only exists when the gate found no errors, so these
    /// are the surviving warnings plus zeroed error rows).
    pub analyze: AnalyzeStats,
    /// Per-rule diagnostic counts from the post-reduction verification
    /// gate (a report only exists when the gate found no errors, so these
    /// are the surviving warnings plus zeroed error rows).
    pub verify: VerifyStats,
    /// Aggregated observability counters and histograms for this
    /// compaction (empty unless the [`Compactor`](crate::Compactor) ran
    /// with a recorder attached). For a shared recorder the compactor
    /// stores the per-PTP *delta*, so sibling reports don't double-count.
    pub metrics: Metrics,
}

impl CompactionReport {
    /// Size reduction as a percentage (the paper's `(%)` columns report the
    /// reduction with a minus sign).
    #[must_use]
    pub fn size_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.compacted_size as f64 / self.original_size.max(1) as f64)
    }

    /// Duration reduction as a percentage.
    #[must_use]
    pub fn duration_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.compacted_duration as f64 / self.original_duration.max(1) as f64)
    }

    /// Fault-coverage difference in percentage points (positive = the
    /// compacted PTP covers more).
    #[must_use]
    pub fn fc_diff_pct(&self) -> f64 {
        (self.fc_after - self.fc_before) * 100.0
    }

    /// Serializes the report's *deterministic* fields as a JSON object.
    ///
    /// Wall-clock durations (`compaction_time`, `stage_timings`) and the
    /// observability `metrics` are excluded: they vary run to run. What
    /// remains is reproducible from the inputs alone, so two runs over
    /// identical inputs — cached or not — emit byte-identical JSON. The
    /// CLI's `--json`, the bench's cold-vs-warm block, and the check.sh
    /// cache smoke all diff this form.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        format!(
            concat!(
                "{{\n",
                "  \"name\": \"{}\",\n",
                "  \"original_size\": {},\n",
                "  \"compacted_size\": {},\n",
                "  \"original_duration\": {},\n",
                "  \"compacted_duration\": {},\n",
                "  \"fc_before\": {},\n",
                "  \"fc_after\": {},\n",
                "  \"sbs_total\": {},\n",
                "  \"sbs_removed\": {},\n",
                "  \"essential_instructions\": {},\n",
                "  \"fault_sim_runs\": {},\n",
                "  \"logic_sim_runs\": {},\n",
                "  \"untestable\": {},\n",
                "  \"analyze_errors\": {},\n",
                "  \"analyze_warnings\": {},\n",
                "  \"verify_errors\": {},\n",
                "  \"verify_warnings\": {}\n",
                "}}"
            ),
            esc(&self.name),
            self.original_size,
            self.compacted_size,
            self.original_duration,
            self.compacted_duration,
            self.fc_before,
            self.fc_after,
            self.sbs_total,
            self.sbs_removed,
            self.essential_instructions,
            self.fault_sim_runs,
            self.logic_sim_runs,
            self.untestable,
            self.analyze.total_errors(),
            self.analyze.total_warnings(),
            self.verify.total_errors(),
            self.verify.total_warnings(),
        )
    }

    /// Merges several reports into a combined row (the paper's
    /// `IMM+MEM+CNTRL` / `TPGEN+RAND` rows). Coverage fields must be
    /// supplied by the caller (combined FC is not a sum).
    #[must_use]
    pub fn combined(
        name: &str,
        parts: &[&CompactionReport],
        fc_before: f64,
        fc_after: f64,
    ) -> CompactionReport {
        CompactionReport {
            name: name.to_string(),
            original_size: parts.iter().map(|r| r.original_size).sum(),
            compacted_size: parts.iter().map(|r| r.compacted_size).sum(),
            original_duration: parts.iter().map(|r| r.original_duration).sum(),
            compacted_duration: parts.iter().map(|r| r.compacted_duration).sum(),
            fc_before,
            fc_after,
            sbs_total: parts.iter().map(|r| r.sbs_total).sum(),
            sbs_removed: parts.iter().map(|r| r.sbs_removed).sum(),
            essential_instructions: parts.iter().map(|r| r.essential_instructions).sum(),
            fault_sim_runs: parts.iter().map(|r| r.fault_sim_runs).sum(),
            logic_sim_runs: parts.iter().map(|r| r.logic_sim_runs).sum(),
            // Combined rows target one module: the proven set is shared,
            // not additive (mirrors `FaultSimReport::merge`).
            untestable: parts.iter().map(|r| r.untestable).max().unwrap_or(0),
            compaction_time: parts.iter().map(|r| r.compaction_time).sum(),
            stage_timings: parts.iter().fold(StageTimings::default(), |acc, r| {
                acc.merged(&r.stage_timings)
            }),
            analyze: parts
                .iter()
                .fold(AnalyzeStats::default(), |acc, r| acc.merged(&r.analyze)),
            verify: parts
                .iter()
                .fold(VerifyStats::default(), |acc, r| acc.merged(&r.verify)),
            metrics: parts.iter().fold(Metrics::default(), |mut acc, r| {
                acc.merge(&r.metrics);
                acc
            }),
        }
    }
}

impl fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>8} {:>7.2} {:>12} {:>7.2} {:>+7.2} {:>9.2?}",
            self.name,
            self.compacted_size,
            -self.size_reduction_pct(),
            self.compacted_duration,
            -self.duration_reduction_pct(),
            self.fc_diff_pct(),
            self.compaction_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompactionReport {
        CompactionReport {
            name: "IMM".into(),
            original_size: 1000,
            compacted_size: 30,
            original_duration: 66_000,
            compacted_duration: 2_700,
            fc_before: 0.7113,
            fc_after: 0.7119,
            sbs_total: 60,
            sbs_removed: 58,
            essential_instructions: 25,
            fault_sim_runs: 1,
            logic_sim_runs: 1,
            untestable: 4,
            compaction_time: Duration::from_millis(1234),
            stage_timings: StageTimings {
                analyze: Duration::from_millis(50),
                trace: Duration::from_millis(600),
                fsim: Duration::from_millis(500),
                label: Duration::from_millis(34),
                reduce: Duration::from_millis(100),
                verify: Duration::from_millis(16),
                eval: Duration::from_millis(900),
            },
            analyze: {
                let mut a = AnalyzeStats::default();
                a.warnings[2] = 1; // one dead-logic warning survived the gate
                a
            },
            verify: {
                let mut v = VerifyStats::default();
                v.warnings[0] = 1;
                v
            },
            metrics: {
                let mut m = Metrics::default();
                m.add("pipeline.fsim_runs", 1);
                m
            },
        }
    }

    #[test]
    fn reductions_are_percentages() {
        let r = sample();
        assert!((r.size_reduction_pct() - 97.0).abs() < 1e-9);
        assert!((r.duration_reduction_pct() - 95.909_09).abs() < 1e-3);
        assert!((r.fc_diff_pct() - 0.06).abs() < 1e-9);
    }

    #[test]
    fn combined_sums_counts() {
        let a = sample();
        let b = sample();
        let c = CompactionReport::combined("BOTH", &[&a, &b], 0.8, 0.79);
        assert_eq!(c.original_size, 2000);
        assert_eq!(c.fault_sim_runs, 2);
        // Shared universe: untestable is a max, not a sum.
        assert_eq!(c.untestable, 4);
        assert!((c.fc_diff_pct() + 1.0).abs() < 1e-9);
        assert_eq!(c.stage_timings.fsim, Duration::from_millis(1000));
        assert_eq!(c.stage_timings.analyze, Duration::from_millis(100));
        assert_eq!(c.stage_timings.total(), Duration::from_millis(4400));
        assert_eq!(c.analyze.total_warnings(), 2);
        assert_eq!(c.analyze.total_errors(), 0);
        assert_eq!(c.verify.total_warnings(), 2);
        assert_eq!(c.verify.total_errors(), 0);
        assert_eq!(c.metrics.counter("pipeline.fsim_runs"), 2);
    }

    #[test]
    fn stage_timings_display_names_every_stage() {
        let s = sample().stage_timings.to_string();
        for stage in [
            "analyze", "trace", "fsim", "label", "reduce", "verify", "eval",
        ] {
            assert!(s.contains(stage), "missing {stage} in {s}");
        }
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = sample();
        r.name = "IM\"M\\x".into();
        let j = r.to_json();
        assert_eq!(j, r.clone().to_json());
        assert!(j.contains("\"name\": \"IM\\\"M\\\\x\""));
        assert!(j.contains("\"fc_before\": 0.7113"));
        assert!(j.contains("\"untestable\": 4"));
        assert!(j.contains("\"analyze_warnings\": 1"));
        // Volatile fields stay out: equal inputs give equal JSON even when
        // timings and metrics differ.
        let mut other = r.clone();
        other.compaction_time = Duration::from_secs(99);
        other.metrics = Metrics::default();
        assert_eq!(other.to_json(), j);
        assert!(!j.contains("compaction_time"));
    }

    #[test]
    fn display_is_one_row() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("IMM"));
        assert!(s.contains("-97.00"));
        assert_eq!(s.lines().count(), 1);
    }

    #[test]
    fn features_display() {
        let f = PtpFeatures {
            name: "MEM".into(),
            size: 32581,
            arc_fraction: 1.0,
            duration: 3_186_236,
            fault_coverage: 0.7659,
        };
        let s = f.to_string();
        assert!(s.contains("MEM"));
        assert!(s.contains("76.59"));
    }

    #[test]
    fn zero_size_is_guarded() {
        let mut r = sample();
        r.original_size = 0;
        r.compacted_size = 0;
        r.original_duration = 0;
        r.compacted_duration = 0;
        assert!(r.size_reduction_pct().is_finite());
        assert!(r.duration_reduction_pct().is_finite());
    }
}
