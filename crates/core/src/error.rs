//! The compaction pipeline's error type.

use std::error::Error;
use std::fmt;

use warpstl_gpu::SimError;
use warpstl_verify::VerifyReport;

/// Why a compaction run aborted: either the GPU model failed, or the
/// post-reduction verification gate found the compacted PTP malformed.
#[derive(Debug, Clone)]
pub enum CompactionError {
    /// The logic simulation raised an error.
    Sim(SimError),
    /// The static verifier found errors in the compacted PTP; the pipeline
    /// stopped before the evaluation fault simulations. The full structured
    /// report is attached.
    Verify {
        /// The PTP that failed verification.
        name: String,
        /// The verifier's findings.
        report: VerifyReport,
    },
}

impl fmt::Display for CompactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactionError::Sim(e) => write!(f, "simulation error: {e}"),
            CompactionError::Verify { name, report } => write!(
                f,
                "compacted PTP {name} failed verification with {} error(s):\n{report}",
                report.error_count()
            ),
        }
    }
}

impl Error for CompactionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompactionError::Sim(e) => Some(e),
            CompactionError::Verify { .. } => None,
        }
    }
}

impl From<SimError> for CompactionError {
    fn from(e: SimError) -> CompactionError {
        CompactionError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_verify::{Diagnostic, Rule};

    #[test]
    fn verify_variant_displays_report() {
        let err = CompactionError::Verify {
            name: "IMM".into(),
            report: VerifyReport {
                name: "IMM".into(),
                program_len: 3,
                diagnostics: vec![Diagnostic::error(Rule::UseBeforeDef, 1, "R1 undefined")],
            },
        };
        let s = err.to_string();
        assert!(s.contains("failed verification with 1 error(s)"));
        assert!(s.contains("use-before-def"));
        assert!(err.source().is_none());
    }

    #[test]
    fn sim_variant_converts_and_chains() {
        let err: CompactionError = SimError::ConstWrite { addr: 0xdead }.into();
        assert!(matches!(err, CompactionError::Sim(_)));
        assert!(err.source().is_some());
    }
}
