//! The compaction pipeline's error type.

use std::error::Error;
use std::fmt;

use warpstl_analyze::AnalyzeReport;
use warpstl_gpu::SimError;
use warpstl_verify::VerifyReport;

/// Why a compaction run aborted: the target netlist failed the static
/// analysis gate, the GPU model failed, or the post-reduction verification
/// gate found the compacted PTP malformed.
#[derive(Debug, Clone)]
pub enum CompactionError {
    /// The static netlist analyzer found lint errors (combinational loops,
    /// undriven nets) in the target module; the pipeline stopped before
    /// spending its single fault simulation. The full structured report is
    /// attached.
    Analyze {
        /// The netlist that failed the gate.
        name: String,
        /// The analyzer's findings.
        report: AnalyzeReport,
    },
    /// The logic simulation raised an error.
    Sim(SimError),
    /// The static verifier found errors in the compacted PTP; the pipeline
    /// stopped before the evaluation fault simulations. The full structured
    /// report is attached.
    Verify {
        /// The PTP that failed verification.
        name: String,
        /// The verifier's findings.
        report: VerifyReport,
    },
}

impl fmt::Display for CompactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactionError::Analyze { name, report } => write!(
                f,
                "netlist {name} failed static analysis with {} error(s):\n{report}",
                report.error_count()
            ),
            CompactionError::Sim(e) => write!(f, "simulation error: {e}"),
            CompactionError::Verify { name, report } => write!(
                f,
                "compacted PTP {name} failed verification with {} error(s):\n{report}",
                report.error_count()
            ),
        }
    }
}

impl Error for CompactionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompactionError::Sim(e) => Some(e),
            CompactionError::Analyze { .. } | CompactionError::Verify { .. } => None,
        }
    }
}

impl From<SimError> for CompactionError {
    fn from(e: SimError) -> CompactionError {
        CompactionError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_verify::{Diagnostic, Rule};

    #[test]
    fn analyze_variant_displays_report() {
        let err = CompactionError::Analyze {
            name: "fixture_comb_loop".into(),
            report: AnalyzeReport {
                name: "fixture_comb_loop".into(),
                gates: 5,
                diagnostics: vec![warpstl_analyze::Diagnostic::error(
                    warpstl_analyze::Rule::CombLoop,
                    warpstl_netlist::NetId(2),
                    "combinational loop: n2 -> n3 -> n2",
                )],
                implications: warpstl_analyze::ImplicationStats::default(),
            },
        };
        let s = err.to_string();
        assert!(s.contains("failed static analysis with 1 error(s)"));
        assert!(s.contains("comb-loop"));
        assert!(err.source().is_none());
    }

    #[test]
    fn verify_variant_displays_report() {
        let err = CompactionError::Verify {
            name: "IMM".into(),
            report: VerifyReport {
                name: "IMM".into(),
                program_len: 3,
                diagnostics: vec![Diagnostic::error(Rule::UseBeforeDef, 1, "R1 undefined")],
            },
        };
        let s = err.to_string();
        assert!(s.contains("failed verification with 1 error(s)"));
        assert!(s.contains("use-before-def"));
        assert!(err.source().is_none());
    }

    #[test]
    fn sim_variant_converts_and_chains() {
        let err: CompactionError = SimError::ConstWrite { addr: 0xdead }.into();
        assert!(matches!(err, CompactionError::Sim(_)));
        assert!(err.source().is_some());
    }
}
