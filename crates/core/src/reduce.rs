//! The PTP reduction stage (Fig. 3 of the paper), with register-liveness
//! protection, branch-target remapping, and input-data relocation.

use std::collections::HashSet;

use warpstl_isa::{Instruction, Pred, Reg, SrcOperand};
use warpstl_programs::{segment_small_blocks, ArcAnalysis, BasicBlocks, Ptp, SbSlots};

use crate::Labels;

/// The outcome of reducing a labeled PTP.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The compacted program.
    pub program: Vec<Instruction>,
    /// Relocated initial global-memory words.
    pub global_init: Vec<(u64, u32)>,
    /// Updated slot layout (same stride, original `sb_count` retained so
    /// untouched offsets keep decoding).
    pub sb_slots: Option<SbSlots>,
    /// Total Small Blocks found.
    pub total_sbs: usize,
    /// Small Blocks removed.
    pub removed_sbs: usize,
    /// Instructions removed.
    pub removed_instructions: usize,
    /// The removed instructions' pcs in the *original* program, ascending —
    /// the verifier re-checks ARC admissibility against these.
    pub removed_pcs: Vec<usize>,
    /// Candidates kept only because of register liveness.
    pub liveness_protected: usize,
}

/// Reduces a labeled PTP: removes every Small Block inside the Admissible
/// Regions for Compaction whose instructions are all `unessential` (the
/// paper's Fig. 3), provided the removal leaves no later instruction
/// reading a register the SB was responsible for.
///
/// Beyond the paper's pseudocode, removal also:
///
/// - remaps branch/`SSY`/`CAL` targets to the surviving instructions;
/// - relocates the removed SBs' input-data slots (when the PTP declares an
///   [`SbSlots`] layout), rewriting the surviving loads' offsets.
///
/// # Examples
///
/// See [`Compactor::compact`](crate::Compactor::compact), which drives this
/// stage.
#[must_use]
pub fn reduce_ptp(ptp: &Ptp, labels: &Labels) -> Reduction {
    reduce_ptp_with(ptp, labels, true)
}

/// [`reduce_ptp`] with the ARC filter made explicit. Passing
/// `respect_arc = false` lets removal reach into parametric loops — the
/// configuration the paper warns against; it exists for the ARC ablation
/// experiment.
#[must_use]
pub fn reduce_ptp_with(ptp: &Ptp, labels: &Labels, respect_arc: bool) -> Reduction {
    let program = &ptp.program;
    let bbs = BasicBlocks::of(program);
    let arc = ArcAnalysis::of(program, &bbs);
    let sbs = segment_small_blocks(program, &bbs);

    // Candidate SBs: inside the ARC with every instruction unessential.
    let candidates: Vec<usize> = sbs
        .iter()
        .enumerate()
        .filter(|(_, sb)| {
            (!respect_arc || arc.is_admissible(sb.block))
                && sb.range().all(|pc| !labels.is_essential(pc))
        })
        .map(|(i, _)| i)
        .collect();

    // Liveness fix-point: an SB is removable only when no surviving later
    // instruction reads a register or predicate it writes. `drop` marks the
    // instructions of already-removed SBs and grows monotonically, so the
    // loop converges in at most `candidates` passes (typically two).
    let mut removed: HashSet<usize> = HashSet::new();
    let mut drop = vec![false; program.len()];
    let mut liveness_protected = 0usize;
    loop {
        let mut changed = false;
        for &i in &candidates {
            if removed.contains(&i) {
                continue;
            }
            let sb = sbs[i];
            if sb_is_dead(program, sb.range(), &drop) {
                removed.insert(i);
                for pc in sb.range() {
                    drop[pc] = true;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &i in &candidates {
        if !removed.contains(&i) {
            liveness_protected += 1;
        }
    }

    // Old -> new index mapping; a dropped target resolves to the next kept
    // instruction (or the end of the program).
    let mut new_index = vec![0usize; program.len() + 1];
    let mut next = 0usize;
    for pc in 0..program.len() {
        new_index[pc] = next;
        if !drop[pc] {
            next += 1;
        }
    }
    new_index[program.len()] = next;

    // Slot relocation: removed SBs release their input slots; surviving
    // slots renumber densely.
    let (slot_map, sb_slots) = relocate_slots(ptp, &sbs, &removed);

    let mut new_program: Vec<Instruction> = Vec::with_capacity(next);
    for (pc, instr) in program.iter().enumerate() {
        if drop[pc] {
            continue;
        }
        let mut instr = instr.clone();
        if let Some(t) = instr.target() {
            let t = t.min(program.len());
            instr.set_target(new_index[t]);
        }
        if let (Some(slots), Some(map)) = (&ptp.sb_slots, &slot_map) {
            rewrite_slot_offset(&mut instr, slots, map);
        }
        new_program.push(instr);
    }

    // Relocate the data image.
    let global_init = match (&ptp.sb_slots, &slot_map) {
        (Some(slots), Some(map)) => ptp
            .global_init
            .iter()
            .filter_map(|&(addr, value)| match slots.locate(addr) {
                Some((t, k, w)) => map[k].map(|j| (slots.addr(t, j, w), value)),
                None => Some((addr, value)),
            })
            .collect(),
        _ => ptp.global_init.clone(),
    };

    let removed_pcs: Vec<usize> = drop
        .iter()
        .enumerate()
        .filter_map(|(pc, &d)| d.then_some(pc))
        .collect();
    Reduction {
        program: new_program,
        global_init,
        sb_slots,
        total_sbs: sbs.len(),
        removed_sbs: removed.len(),
        removed_instructions: removed_pcs.len(),
        removed_pcs,
        liveness_protected,
    }
}

/// Whether removing `range` leaves no surviving later instruction reading a
/// register or predicate the range writes. The scan is linear and
/// conservative: only an unguarded redefinition kills a register.
/// `dropped[pc]` marks instructions of already-removed SBs.
fn sb_is_dead(program: &[Instruction], range: std::ops::Range<usize>, dropped: &[bool]) -> bool {
    let mut live_regs: HashSet<Reg> = HashSet::new();
    let mut live_preds: HashSet<Pred> = HashSet::new();
    for pc in range.clone() {
        if let Some(d) = program[pc].writes() {
            live_regs.insert(d);
        }
        if let Some(p) = program[pc].pdst {
            live_preds.insert(p);
        }
    }
    for (pc, instr) in program.iter().enumerate().skip(range.end) {
        if dropped[pc] || range.contains(&pc) {
            continue;
        }
        if live_regs.is_empty() && live_preds.is_empty() {
            return true;
        }
        // Reads first: a read of a still-live register keeps the SB.
        for r in instr.reads() {
            if live_regs.contains(&r) {
                return false;
            }
        }
        for p in instr.reads_preds() {
            if live_preds.contains(&p) {
                return false;
            }
        }
        if let SrcOperand::Pred(p) = *instr.srcs.first().unwrap_or(&SrcOperand::Imm(0)) {
            if live_preds.contains(&p) {
                return false;
            }
        }
        // Unguarded writes kill.
        if instr.guard.is_always_true() {
            if let Some(d) = instr.writes() {
                live_regs.remove(&d);
            }
            if let Some(p) = instr.pdst {
                live_preds.remove(&p);
            }
        }
    }
    true
}

/// Builds the old-slot → new-slot mapping and the updated layout.
fn relocate_slots(
    ptp: &Ptp,
    sbs: &[warpstl_programs::SmallBlock],
    removed: &HashSet<usize>,
) -> (Option<Vec<Option<usize>>>, Option<SbSlots>) {
    let Some(slots) = &ptp.sb_slots else {
        return (None, ptp.sb_slots);
    };
    // A slot is used by the SBs whose loads address it; it survives iff any
    // of those SBs survives.
    let mut slot_used_by_kept = vec![false; slots.sb_count];
    let mut slot_seen = vec![false; slots.sb_count];
    for (i, sb) in sbs.iter().enumerate() {
        for pc in sb.range() {
            if let Some(k) = slot_of(&ptp.program[pc], slots) {
                slot_seen[k] = true;
                if !removed.contains(&i) {
                    slot_used_by_kept[k] = true;
                }
            }
        }
    }
    let mut map: Vec<Option<usize>> = vec![None; slots.sb_count];
    let mut next = 0usize;
    for k in 0..slots.sb_count {
        // Unreferenced slots keep data only if never seen (defensive).
        if slot_used_by_kept[k] || !slot_seen[k] {
            map[k] = Some(next);
            next += 1;
        }
    }
    (Some(map), Some(*slots))
}

/// The slot index a load/store offset addresses, if the instruction uses
/// the slot base register.
fn slot_of(instr: &Instruction, slots: &SbSlots) -> Option<usize> {
    let m = instr.mem_ref()?;
    if m.base.index() != slots.base_reg {
        return None;
    }
    let k = m.offset as usize / (slots.words_per_sb * 4);
    (k < slots.sb_count).then_some(k)
}

/// Rewrites a surviving instruction's slot offset to the new slot index.
fn rewrite_slot_offset(instr: &mut Instruction, slots: &SbSlots, map: &[Option<usize>]) {
    let Some(old) = slot_of(instr, slots) else {
        return;
    };
    let Some(new) = map[old] else {
        return; // defensive: kept instruction addressing a removed slot
    };
    let m = instr.mem_ref().expect("slot instruction has a mem ref");
    let word_in_slot = m.offset as usize % (slots.words_per_sb * 4);
    let new_offset = (new * slots.words_per_sb * 4 + word_in_slot) as u16;
    for s in &mut instr.srcs {
        if let SrcOperand::Mem(mem) = s {
            mem.offset = new_offset;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::KernelConfig;
    use warpstl_isa::asm;
    use warpstl_netlist::modules::ModuleKind;

    fn labels_all(essential: &[bool]) -> Labels {
        // Construct via the public path: fabricate a trace/report is heavy,
        // so use a tiny shim through label_instructions with a real run.
        // Instead, build Labels through serde-free means: replicate the
        // struct via a helper in this crate's tests only.
        LabelsShim::build(essential)
    }

    // Labels has no public constructor; give tests one through a transparent
    // re-build using label_instructions on a synthetic trace.
    struct LabelsShim;
    impl LabelsShim {
        fn build(essential: &[bool]) -> Labels {
            use warpstl_fault::FaultSimReport;
            use warpstl_gpu::{Trace, TraceRecord};
            let mut trace = Trace::new();
            let mut report = FaultSimReport::new();
            for (pc, &e) in essential.iter().enumerate() {
                let cc = pc as u64 * 100;
                trace.push(TraceRecord {
                    cc_start: cc,
                    cc_end: cc + 100,
                    pc,
                    block: 0,
                    warp: 0,
                    opcode: warpstl_isa::Opcode::Nop,
                    active_mask: u32::MAX,
                });
                if e {
                    report.record_pattern(cc + 1, 1, 1);
                }
            }
            crate::label_instructions(essential.len(), &trace, &report)
        }
    }

    fn ptp_of(src: &str) -> Ptp {
        Ptp::new(
            "t",
            ModuleKind::DecoderUnit,
            KernelConfig::new(1, 32),
            asm::assemble(src).unwrap(),
        )
    }

    #[test]
    fn unessential_sb_is_removed() {
        let ptp = ptp_of(
            "MOV32I R6, 0x100;\n\
             MOV32I R1, 0x1;\n\
             IADD R4, R1, R1;\n\
             STG [R6], R4;\n\
             MOV32I R1, 0x2;\n\
             XOR R4, R1, R1;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        // First SB (pcs 0..4, includes the preamble MOV to R6) essential;
        // second SB (4..7) unessential.
        let labels = labels_all(&[true, true, true, true, false, false, false, false]);
        let r = reduce_ptp(&ptp, &labels);
        assert_eq!(r.total_sbs, 2);
        assert_eq!(r.removed_sbs, 1);
        assert_eq!(r.program.len(), 5);
        assert_eq!(r.removed_instructions, 3);
        assert_eq!(r.removed_pcs, vec![4, 5, 6]);
    }

    #[test]
    fn essential_instruction_keeps_its_sb() {
        let ptp = ptp_of(
            "MOV32I R6, 0x100;\n\
             MOV32I R1, 0x2;\n\
             XOR R4, R1, R1;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        let labels = labels_all(&[false, false, true, false, false]);
        let r = reduce_ptp(&ptp, &labels);
        assert_eq!(r.removed_sbs, 0);
        assert_eq!(r.program.len(), 5);
    }

    #[test]
    fn liveness_protects_producers() {
        // SB1 (unessential) writes R2, which the essential SB2 reads: SB1
        // must stay despite its labels.
        let ptp = ptp_of(
            "MOV32I R6, 0x100;\n\
             MOV32I R2, 0x7;\n\
             STG [R6], R2;\n\
             IADD R4, R2, R2;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        let labels = labels_all(&[false, false, false, true, true, false]);
        let r = reduce_ptp(&ptp, &labels);
        assert_eq!(r.removed_sbs, 0);
        assert_eq!(r.liveness_protected, 1);
    }

    #[test]
    fn chain_of_dead_sbs_removes_together() {
        // SB1 feeds SB2; both unessential. The first pass can only remove
        // SB2 (SB1's R2 is still read); the fix-point then removes SB1 too.
        let ptp = ptp_of(
            "MOV32I R6, 0x100;\n\
             STG [R6], R6;\n\
             MOV32I R2, 0x7;\n\
             STG [R6], R2;\n\
             IADD R4, R2, R2;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        let labels = labels_all(&[true, true, false, false, false, false, false]);
        let r = reduce_ptp(&ptp, &labels);
        assert_eq!(r.removed_sbs, 2);
        assert_eq!(r.program.len(), 3);
    }

    #[test]
    fn branch_targets_are_remapped() {
        let ptp = ptp_of(
            "MOV32I R6, 0x100;\n\
             ISETP.LT P0, R6, 0x0;\n\
             @P0 BRA end;\n\
             MOV32I R1, 0x1;\n\
             STG [R6], R1;\n\
             end: EXIT;",
        );
        // The SB at 3..5 is unessential and removable.
        let labels = labels_all(&[true, true, true, false, false, false]);
        let r = reduce_ptp(&ptp, &labels);
        assert_eq!(r.program.len(), 4);
        // The BRA now targets the EXIT at its new index 3.
        assert_eq!(r.program[2].target(), Some(3));
    }

    #[test]
    fn loops_are_never_touched() {
        let ptp = ptp_of(
            "MOV32I R8, 0x3;\n\
             top: MOV32I R1, 0x1;\n\
             STG [R1], R1;\n\
             IADD R8, R8, -0x1;\n\
             ISETP.GT P2, R8, 0x0;\n\
             @P2 BRA top;\n\
             EXIT;",
        );
        let labels = labels_all(&[false; 7]);
        let r = reduce_ptp(&ptp, &labels);
        // The SB inside the loop is inadmissible: nothing is removed.
        assert_eq!(r.removed_sbs, 0);
        assert_eq!(r.program.len(), 7);
    }

    #[test]
    fn slots_relocate_with_data() {
        use warpstl_programs::generators::{generate_mem, MemConfig};
        let ptp = generate_mem(&MemConfig {
            sb_count: 4,
            threads: 2,
            ..MemConfig::default()
        });
        let slots = ptp.sb_slots.unwrap();
        // Label everything unessential except the last SB's instructions:
        // slots 0..3 vanish, slot 3 renumbers to 0.
        let bbs = BasicBlocks::of(&ptp.program);
        let sbs = segment_small_blocks(&ptp.program, &bbs);
        let mut ess = vec![false; ptp.program.len()];
        // Keep the final generated SB (the last two store-terminated runs).
        for sb in &sbs[sbs.len() - 2..] {
            for pc in sb.range() {
                ess[pc] = true;
            }
        }
        // Protect the prologue too.
        for e in ess.iter_mut().take(5) {
            *e = true;
        }
        let labels = labels_all(&ess);
        let r = reduce_ptp(&ptp, &labels);
        assert!(r.removed_sbs > 0);
        // Surviving slots renumber densely: the slot indices addressed by
        // the surviving loads form a contiguous prefix 0..n.
        let mut used: Vec<usize> = r
            .program
            .iter()
            .filter(|i| i.opcode == warpstl_isa::Opcode::Ldg)
            .filter_map(|i| i.mem_ref())
            .filter(|m| m.base.index() == slots.base_reg)
            .map(|m| m.offset as usize / (slots.words_per_sb * 4))
            .collect();
        used.sort_unstable();
        used.dedup();
        let n = used.len();
        assert!(n < slots.sb_count, "nothing was relocated");
        assert_eq!(used, (0..n).collect::<Vec<_>>(), "slots not dense");
        // Data volume shrank accordingly: only surviving slots keep words.
        assert_eq!(r.global_init.len(), n * slots.words_per_sb * slots.threads,);
        assert!(r.global_init.len() < ptp.global_init.len());
    }
}
