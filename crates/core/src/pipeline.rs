//! The five-stage compaction pipeline.

use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

use warpstl_fault::{
    BridgeConfig, BridgeList, FaultList, FaultModel, FaultSimConfig, FaultSimReport, SimGuide,
};
use warpstl_gpu::{Gpu, RunOptions, RunResult, SimError};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Netlist, PatternSeq};
use warpstl_obs::{Metrics, Obs, ObsExt, Recorder};
use warpstl_programs::{ArcAnalysis, BasicBlocks, Ptp};
use warpstl_store::{cached_analyze, cached_bridge_sim, cached_fault_sim, CacheCtx, Store};
use warpstl_verify::{verify_reduction_observed, Severity, VerifyOptions};

use crate::{
    label_instructions, CompactionError, CompactionReport, ModuleContext, PtpFeatures, StageTimings,
};

/// Fault-simulates the per-instance pattern streams against their fault
/// lists, one scoped worker per non-empty stream (instance-level
/// parallelism), and returns the per-instance reports in instance order
/// (`None` where the stream was empty and the list untouched).
///
/// The engine's thread budget is divided across the concurrent instances so
/// instance- and batch-level parallelism compose instead of oversubscribing.
/// Reports and list updates are bit-identical to a serial instance loop:
/// each instance owns its list, and results are collected in instance order.
fn simulate_instances_with<L, F>(
    streams: &[Cow<'_, PatternSeq>],
    lists: &mut [L],
    config: &FaultSimConfig,
    obs: Obs<'_>,
    sim: F,
) -> Vec<Option<FaultSimReport>>
where
    L: Send,
    F: Fn(&PatternSeq, &mut L, &FaultSimConfig) -> FaultSimReport + Sync,
{
    debug_assert_eq!(streams.len(), lists.len());
    let active = streams.iter().filter(|s| !s.is_empty()).count();
    let budget = config.resolved_threads();
    let per_instance = FaultSimConfig {
        threads: (budget / active.max(1)).max(1),
        ..*config
    };
    let mut span = obs.span("pipeline", "pipeline.instances");
    span.arg("active", active);
    span.arg("threads_each", per_instance.threads);
    if active <= 1 || budget <= 1 {
        return streams
            .iter()
            .zip(lists.iter_mut())
            .map(|(s, list)| (!s.is_empty()).then(|| sim(s.as_ref(), list, &per_instance)))
            .collect();
    }
    let sim = &sim;
    let per_instance = &per_instance;
    std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .zip(lists.iter_mut())
            .map(|(s, list)| {
                (!s.is_empty()).then(|| scope.spawn(move || sim(s.as_ref(), list, per_instance)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("fault-sim worker panicked")))
            .collect()
    })
}

/// The stuck-at instantiation: each instance runs through
/// [`cached_fault_sim`] with the shared simulation guide.
fn simulate_instances(
    netlist: &Netlist,
    streams: &[Cow<'_, PatternSeq>],
    lists: &mut [FaultList],
    config: &FaultSimConfig,
    obs: Obs<'_>,
    guide: SimGuide<'_>,
    cache: CacheCtx<'_>,
) -> Vec<Option<FaultSimReport>> {
    simulate_instances_with(streams, lists, config, obs, |s, list, cfg| {
        cached_fault_sim(cache, netlist, s, list, cfg, obs, &guide)
    })
}

/// The bridging instantiation: each instance runs through
/// [`cached_bridge_sim`] (no guide — dominance and untestability proofs
/// are stuck-at constructs).
fn simulate_bridge_instances(
    netlist: &Netlist,
    streams: &[Cow<'_, PatternSeq>],
    lists: &mut [BridgeList],
    config: &FaultSimConfig,
    obs: Obs<'_>,
    cache: CacheCtx<'_>,
) -> Vec<Option<FaultSimReport>> {
    simulate_instances_with(streams, lists, config, obs, |s, list, cfg| {
        cached_bridge_sim(cache, netlist, s, list, cfg, obs)
    })
}

/// The compaction method's driver.
///
/// One `Compactor` compacts the PTPs of an STL one by one, sharing a
/// [`ModuleContext`] (the dropping fault list) per target module — the
/// paper's flow: IMM, then MEM, then CNTRL against the Decoder Unit list;
/// TPGEN then RAND against the SP-core lists; SFU_IMM against the SFU
/// lists.
#[derive(Debug, Clone)]
pub struct Compactor {
    /// The GPU model used for the logic-tracing stage.
    pub gpu: Gpu,
    /// Fault-simulation configuration (dropping on by default).
    pub fsim_config: FaultSimConfig,
    /// The fault model the pipeline targets (stuck-at by default). The
    /// bridging model replaces the collapsed stuck-at universe with a
    /// deterministically sampled set of two-net wired-AND/OR bridges; the
    /// trace/label/reduce/verify stages are model-agnostic.
    pub fault_model: FaultModel,
    /// Bridge-universe sampling parameters (bridging model only).
    pub bridge_config: BridgeConfig,
    /// Apply the module patterns in reverse order during the fault
    /// simulation (the paper uses this for SFU_IMM).
    pub reverse_patterns: bool,
    /// Restrict removal to the Admissible Regions for Compaction (stage 1).
    /// Disabling this reproduces the failure mode the paper warns about
    /// (see the ARC ablation).
    pub respect_arc: bool,
    /// Prune statically-proven-untestable fault classes from every
    /// fault-simulation target set (on by default). Detected sets,
    /// coverages and reports are bit-identical either way — the pruned
    /// classes are provably undetectable — so disabling this is purely a
    /// cross-check/ablation knob.
    pub prune_untestable: bool,
    /// Observability sink. `None` (the default) keeps every instrumentation
    /// point a guaranteed no-op; `Some` collects spans and metrics for all
    /// pipeline stages and the fault-engine internals, exportable with
    /// [`Recorder::to_chrome_trace`]. Share one recorder across the PTPs of
    /// an STL to get a single contiguous trace.
    pub obs: Option<Arc<Recorder>>,
    /// Content-addressed artifact store. `None` (the default) computes
    /// everything; `Some` makes the analyze gate and every fault-engine
    /// invocation consult the cache first and persist misses, so a rerun
    /// over unchanged inputs replays detection stamps instead of
    /// simulating. Results are bit-identical either way.
    pub store: Option<Arc<Store>>,
}

impl Default for Compactor {
    fn default() -> Self {
        Compactor {
            gpu: Gpu::default(),
            fsim_config: FaultSimConfig::default(),
            fault_model: FaultModel::default(),
            bridge_config: BridgeConfig::default(),
            reverse_patterns: false,
            respect_arc: true,
            prune_untestable: true,
            obs: None,
            store: None,
        }
    }
}

/// Everything a compaction run produces.
#[derive(Debug, Clone)]
pub struct CompactionOutcome {
    /// The compacted PTP (the CPTP of the paper).
    pub compacted: Ptp,
    /// The Table II/III row.
    pub report: CompactionReport,
}

impl Compactor {
    /// The borrowed observability handle instrumented code passes around
    /// (`None` when no recorder is attached).
    #[must_use]
    pub fn observer(&self) -> Obs<'_> {
        self.obs.as_deref()
    }

    /// Builds the shared per-module context (netlist, collapsed fault
    /// universe, one dropping fault list per instance).
    #[must_use]
    pub fn context_for(&self, module: ModuleKind) -> ModuleContext {
        let instances = match module {
            ModuleKind::DecoderUnit => 1,
            ModuleKind::SpCore | ModuleKind::Fp32 => self.gpu.config.sp_cores,
            ModuleKind::Sfu => self.gpu.config.sfus,
        };
        ModuleContext::new(module, instances)
            .with_pruning(self.prune_untestable)
            .with_store(self.store.clone())
            .with_model(self.fault_model, &self.bridge_config)
    }

    /// Runs `ptp` with the hardware monitor on (the stage-2 logic
    /// simulation).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the GPU model.
    pub fn trace(&self, ptp: &Ptp) -> Result<RunResult, SimError> {
        let kernel = ptp.to_kernel()?;
        self.gpu.run(&kernel, &RunOptions::capture_all())
    }

    /// Fault-simulates a traced run's module patterns against the context's
    /// shared fault lists, merging the per-instance Fault Sim Reports.
    ///
    /// The netlist is borrowed (not cloned) and the pattern streams are only
    /// materialized when `reverse_patterns` demands it; the instances run
    /// concurrently (see [`simulate_instances`]).
    fn fault_sim(&self, run: &RunResult, ctx: &mut ModuleContext) -> FaultSimReport {
        let streams: Vec<Cow<'_, PatternSeq>> = ctx
            .streams(&run.patterns)
            .into_iter()
            .map(|s| {
                if self.reverse_patterns {
                    Cow::Owned(s.reversed())
                } else {
                    Cow::Borrowed(s)
                }
            })
            .collect();
        debug_assert_eq!(
            streams.len(),
            ctx.instances(),
            "context instance count must match the GPU configuration"
        );
        let reports = match ctx.model() {
            FaultModel::StuckAt => {
                let (netlist, lists, guide, cache) = ctx.netlist_and_lists_mut();
                simulate_instances(
                    netlist,
                    &streams,
                    lists,
                    &self.fsim_config,
                    self.observer(),
                    guide,
                    cache,
                )
            }
            FaultModel::Bridging => {
                let (netlist, lists, cache) = ctx.bridge_netlist_and_lists_mut();
                simulate_bridge_instances(
                    netlist,
                    &streams,
                    lists,
                    &self.fsim_config,
                    self.observer(),
                    cache,
                )
            }
        };
        let mut merged = FaultSimReport::new();
        for report in reports.iter().flatten() {
            merged.merge(report);
        }
        merged
    }

    /// Compacts one PTP: stages 1–5 of the paper, using exactly one logic
    /// simulation and one fault simulation.
    ///
    /// `ctx` carries the shared dropping fault list: compact the PTPs of an
    /// STL in order against the same context. The report's `fc_before` /
    /// `fc_after` are *standalone* coverages (fresh fault lists), matching
    /// the paper's per-PTP FC columns — this is also where RAND's large FC
    /// drop comes from: its compaction dropped faults TPGEN already covers.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the GPU model (original or compacted
    /// program) as [`CompactionError::Sim`], and aborts with
    /// [`CompactionError::Verify`] when the post-reduction static
    /// verification gate finds the compacted PTP malformed — the structured
    /// report replaces a misleading fault-coverage number.
    pub fn compact(
        &self,
        ptp: &Ptp,
        ctx: &mut ModuleContext,
    ) -> Result<CompactionOutcome, CompactionError> {
        let start = Instant::now();
        let obs = self.observer();
        // Snapshot the shared recorder so the report carries this PTP's
        // metric *delta* even when several compacts share one recorder.
        let metrics_before = self.obs.as_deref().map(Recorder::metrics);
        let mut compact_span = obs.span("pipeline", "compact");
        compact_span.arg("ptp", &ptp.name);

        // Mandatory gate: statically analyze the target netlist before
        // spending the single logic and fault simulation on it. Lint
        // errors (combinational loops, undriven nets) make the fault
        // model — and therefore the whole compaction — meaningless.
        let analyze_report = {
            let _s = obs.span("stage", "stage.analyze");
            cached_analyze(ctx.store(), ctx.netlist_key(), ctx.netlist(), obs)
        };
        let analyze_time = start.elapsed();
        if !analyze_report.is_clean() {
            obs.add("pipeline.analyze_rejects", 1);
            return Err(CompactionError::Analyze {
                name: ctx.netlist().name().to_string(),
                report: analyze_report,
            });
        }
        let analyze_stats = analyze_report.stats();

        // Stage 1: partitioning (BBs, ARC) happens inside reduce_ptp; the
        // stage is cheap and pure, so it is recomputed there.
        // Stage 2: ONE logic simulation with tracing + pattern capture.
        let stamp = Instant::now();
        let run = {
            let _s = obs.span("stage", "stage.trace");
            self.trace(ptp)?
        };
        obs.add("pipeline.logic_sim_runs", 1);
        let trace_time = stamp.elapsed();

        // Stage 3a: ONE fault simulation against the shared dropping list.
        let stamp = Instant::now();
        let fsr = {
            let _s = obs.span("stage", "stage.fsim");
            self.fault_sim(&run, ctx)
        };
        obs.add("pipeline.fsim_runs", 1);
        let fsim_time = stamp.elapsed();

        // Stage 3b: instruction labeling (Fig. 2).
        let stamp = Instant::now();
        let labels = {
            let _s = obs.span("stage", "stage.label");
            label_instructions(ptp.program.len(), &run.trace, &fsr)
        };
        obs.add("label.essential", labels.essential_count() as u64);
        let label_time = stamp.elapsed();

        // Stage 4: reduction (Fig. 3) + stage 5: reassembling.
        let stamp = Instant::now();
        let reduce_span = obs.span("stage", "stage.reduce");
        let reduction = crate::reduce_ptp_with(ptp, &labels, self.respect_arc);

        let mut compacted = ptp.clone();
        compacted.program = reduction.program;
        compacted.global_init = reduction.global_init;
        compacted.sb_slots = reduction.sb_slots;
        drop(reduce_span);
        obs.add("reduce.sbs_total", reduction.total_sbs as u64);
        obs.add("reduce.sbs_removed", reduction.removed_sbs as u64);
        obs.add(
            "reduce.instructions_removed",
            reduction.removed_pcs.len() as u64,
        );
        let reduce_time = stamp.elapsed();

        // Mandatory gate: statically verify the reassembled CPTP before
        // spending fault simulations on it. ARC violations are only
        // possible when the ARC filter is off (the ablation), where they
        // are expected — downgrade them to warnings there.
        let stamp = Instant::now();
        let verify_opts = VerifyOptions {
            arc_severity: if self.respect_arc {
                Severity::Error
            } else {
                Severity::Warning
            },
        };
        let verify_report = {
            let _s = obs.span("stage", "stage.verify");
            verify_reduction_observed(ptp, &compacted, &reduction.removed_pcs, &verify_opts, obs)
        };
        let verify_time = stamp.elapsed();
        let compaction_time = start.elapsed();
        if !verify_report.is_clean() {
            obs.add("pipeline.verify_rejects", 1);
            return Err(CompactionError::Verify {
                name: ptp.name.clone(),
                report: verify_report,
            });
        }

        // Evaluation (outside the method's fault-simulation budget): the
        // standalone FC of the original and compacted programs, and the
        // compacted duration.
        let stamp = Instant::now();
        let (fc_before, compacted_run, fc_after) = {
            let _s = obs.span("stage", "stage.eval");
            let fc_before = self.standalone_coverage_of_run(&run, ctx);
            let compacted_run = self.trace(&compacted)?;
            let fc_after = self.standalone_coverage_of_run(&compacted_run, ctx);
            (fc_before, compacted_run, fc_after)
        };
        let eval_time = stamp.elapsed();

        obs.add("pipeline.ptps", 1);
        obs.record(
            "pipeline.size_reduction_pct",
            100.0 * (1.0 - compacted.size() as f64 / ptp.size().max(1) as f64),
        );

        compact_span.arg("compacted_size", compacted.size());
        drop(compact_span);
        // The per-PTP slice of the recorder: everything added since the
        // snapshot above (on a private recorder this is simply everything).
        let metrics = match (&metrics_before, self.obs.as_deref()) {
            (Some(before), Some(rec)) => rec.metrics().delta_since(before),
            _ => Metrics::default(),
        };

        let report = CompactionReport {
            name: ptp.name.clone(),
            original_size: ptp.size(),
            compacted_size: compacted.size(),
            original_duration: run.cycles,
            compacted_duration: compacted_run.cycles,
            fc_before,
            fc_after,
            sbs_total: reduction.total_sbs,
            sbs_removed: reduction.removed_sbs,
            essential_instructions: labels.essential_count(),
            fault_sim_runs: 1,
            logic_sim_runs: 1,
            // Statically proven, so identical with pruning on or off —
            // keeps the deterministic JSON byte-identical across modes.
            untestable: ctx.untestable_count(),
            compaction_time,
            stage_timings: StageTimings {
                analyze: analyze_time,
                trace: trace_time,
                fsim: fsim_time,
                label: label_time,
                reduce: reduce_time,
                verify: verify_time,
                eval: eval_time,
            },
            analyze: analyze_stats,
            verify: verify_report.stats(),
            metrics,
        };
        Ok(CompactionOutcome { compacted, report })
    }

    /// The standalone fault coverage achieved by a traced run (fresh fault
    /// lists under the active model, dropping within the run), instances
    /// simulated concurrently.
    fn standalone_coverage_of_run(&self, run: &RunResult, ctx: &ModuleContext) -> f64 {
        let cfg = FaultSimConfig {
            threads: self.fsim_config.threads,
            backend: self.fsim_config.backend,
            ..FaultSimConfig::default()
        };
        let streams: Vec<Cow<'_, PatternSeq>> = ctx
            .streams(&run.patterns)
            .into_iter()
            .map(Cow::Borrowed)
            .collect();
        match ctx.model() {
            FaultModel::StuckAt => {
                let mut lists: Vec<FaultList> = ctx.fresh_lists();
                simulate_instances(
                    ctx.netlist(),
                    &streams,
                    &mut lists,
                    &cfg,
                    self.observer(),
                    ctx.sim_guide(),
                    ctx.cache_ctx(),
                );
                lists.iter().map(FaultList::coverage).sum::<f64>() / lists.len().max(1) as f64
            }
            FaultModel::Bridging => {
                let mut lists: Vec<BridgeList> = ctx.fresh_bridge_lists();
                simulate_bridge_instances(
                    ctx.netlist(),
                    &streams,
                    &mut lists,
                    &cfg,
                    self.observer(),
                    ctx.cache_ctx(),
                );
                lists.iter().map(BridgeList::coverage).sum::<f64>() / lists.len().max(1) as f64
            }
        }
    }

    /// Evaluates a PTP's Table I features: size, ARC fraction, duration and
    /// standalone fault coverage.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the GPU model.
    pub fn features(&self, ptp: &Ptp, ctx: &ModuleContext) -> Result<PtpFeatures, SimError> {
        let bbs = BasicBlocks::of(&ptp.program);
        let arc = ArcAnalysis::of(&ptp.program, &bbs);
        let run = self.trace(ptp)?;
        let fc = self.standalone_coverage_of_run(&run, ctx);
        Ok(PtpFeatures {
            name: ptp.name.clone(),
            size: ptp.size(),
            arc_fraction: arc.arc_fraction(),
            duration: run.cycles,
            fault_coverage: fc,
        })
    }

    /// The combined standalone coverage of several PTPs applied in order to
    /// fresh fault lists (used for the `IMM+MEM+CNTRL`-style rows).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the GPU model.
    pub fn combined_coverage(&self, ptps: &[&Ptp], ctx: &ModuleContext) -> Result<f64, SimError> {
        let cfg = FaultSimConfig {
            threads: self.fsim_config.threads,
            backend: self.fsim_config.backend,
            ..FaultSimConfig::default()
        };
        let mut sa_lists: Vec<FaultList> = match ctx.model() {
            FaultModel::StuckAt => ctx.fresh_lists(),
            FaultModel::Bridging => Vec::new(),
        };
        let mut bridge_lists: Vec<BridgeList> = match ctx.model() {
            FaultModel::StuckAt => Vec::new(),
            FaultModel::Bridging => ctx.fresh_bridge_lists(),
        };
        for ptp in ptps {
            let run = self.trace(ptp)?;
            let streams: Vec<Cow<'_, PatternSeq>> = ctx
                .streams(&run.patterns)
                .into_iter()
                .map(Cow::Borrowed)
                .collect();
            match ctx.model() {
                FaultModel::StuckAt => {
                    simulate_instances(
                        ctx.netlist(),
                        &streams,
                        &mut sa_lists,
                        &cfg,
                        self.observer(),
                        ctx.sim_guide(),
                        ctx.cache_ctx(),
                    );
                }
                FaultModel::Bridging => {
                    simulate_bridge_instances(
                        ctx.netlist(),
                        &streams,
                        &mut bridge_lists,
                        &cfg,
                        self.observer(),
                        ctx.cache_ctx(),
                    );
                }
            }
        }
        Ok(match ctx.model() {
            FaultModel::StuckAt => {
                sa_lists.iter().map(FaultList::coverage).sum::<f64>() / sa_lists.len().max(1) as f64
            }
            FaultModel::Bridging => {
                bridge_lists.iter().map(BridgeList::coverage).sum::<f64>()
                    / bridge_lists.len().max(1) as f64
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_programs::generators::{
        generate_imm, generate_mem, generate_sfu_imm, ImmConfig, MemConfig, SfuImmConfig,
    };

    #[test]
    fn imm_compaction_shrinks_and_keeps_coverage() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 24,
            ..ImmConfig::default()
        });
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let out = compactor.compact(&ptp, &mut ctx).unwrap();
        let r = &out.report;
        assert!(r.compacted_size < r.original_size, "{r}");
        assert!(r.compacted_duration < r.original_duration);
        assert!(r.sbs_removed > 0);
        assert_eq!(r.fault_sim_runs, 1);
        assert_eq!(r.logic_sim_runs, 1);
        // Module-level observability: pseudorandom DU programs repeat
        // formats heavily, so compaction barely moves the coverage.
        assert!(r.fc_diff_pct().abs() < 5.0, "ΔFC {}", r.fc_diff_pct());
        assert!(r.fc_before > 0.3, "FC {}", r.fc_before);
        // The verification gate ran and passed: zero errors on record.
        assert_eq!(r.verify.total_errors(), 0);
    }

    #[test]
    fn dropping_across_ptps_boosts_second_compaction() {
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let imm = generate_imm(&ImmConfig {
            sb_count: 16,
            ..ImmConfig::default()
        });
        let mem = generate_mem(&MemConfig {
            sb_count: 16,
            ..MemConfig::default()
        });
        let r1 = compactor.compact(&imm, &mut ctx).unwrap().report;
        let r2 = compactor.compact(&mem, &mut ctx).unwrap().report;
        // MEM compacts harder than it would standalone: most DU faults are
        // already dropped. Sanity: reduction percentages are meaningful.
        assert!(r1.size_reduction_pct() > 10.0, "{r1}");
        assert!(r2.size_reduction_pct() > 10.0, "{r2}");

        // Compare against a fresh context for MEM: the shared-list run must
        // remove at least as many SBs.
        let mut fresh = compactor.context_for(ModuleKind::DecoderUnit);
        let r2_fresh = compactor.compact(&mem, &mut fresh).unwrap().report;
        assert!(
            r2.sbs_removed >= r2_fresh.sbs_removed,
            "dropping removed {} vs fresh {}",
            r2.sbs_removed,
            r2_fresh.sbs_removed
        );
    }

    #[test]
    fn second_ptp_after_saturation_loses_standalone_coverage() {
        // The paper's RAND effect, demonstrated on the fast-saturating DU:
        // once the shared list is nearly covered by a first program, a
        // second program compacts away almost everything — and its
        // *standalone* coverage drops accordingly (Table III's −17.07 pp
        // for RAND after TPGEN).
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let first = generate_imm(&ImmConfig {
            sb_count: 48,
            ..ImmConfig::default()
        });
        let second = generate_imm(&ImmConfig {
            sb_count: 16,
            seed: 0xdead_beef,
            ..ImmConfig::default()
        });
        let _ = compactor.compact(&first, &mut ctx).unwrap();
        let r2 = compactor.compact(&second, &mut ctx).unwrap().report;
        assert!(
            r2.size_reduction_pct() > 50.0,
            "expected heavy compaction, got {}",
            r2.size_reduction_pct()
        );
        assert!(
            r2.fc_diff_pct() < -1.0,
            "expected a standalone FC drop, got {}",
            r2.fc_diff_pct()
        );
    }

    #[test]
    fn compacted_ptp_still_runs_and_is_smaller_on_sfu() {
        let compactor = Compactor {
            reverse_patterns: true, // the paper's SFU_IMM trick
            ..Compactor::default()
        };
        let ptp = generate_sfu_imm(&SfuImmConfig {
            max_patterns: 16,
            ..SfuImmConfig::default()
        });
        let mut ctx = compactor.context_for(ModuleKind::Sfu);
        let out = compactor.compact(&ptp, &mut ctx).unwrap();
        assert!(out.compacted.size() <= ptp.size());
        // SFU SBs are independent: coverage must not drop measurably.
        assert!(
            out.report.fc_diff_pct() > -1.0,
            "ΔFC {}",
            out.report.fc_diff_pct()
        );
    }

    #[test]
    fn observed_compaction_records_stage_spans_and_metrics() {
        let compactor = Compactor {
            obs: Some(Arc::new(Recorder::new())),
            ..Compactor::default()
        };
        let ptp = generate_imm(&ImmConfig {
            sb_count: 8,
            ..ImmConfig::default()
        });
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let out = compactor.compact(&ptp, &mut ctx).unwrap();

        let rec = compactor.obs.as_deref().unwrap();
        let spans = rec.spans();
        for stage in [
            "stage.analyze",
            "stage.trace",
            "stage.fsim",
            "stage.label",
            "stage.reduce",
            "stage.verify",
            "stage.eval",
        ] {
            assert_eq!(
                spans.iter().filter(|s| s.name == stage).count(),
                1,
                "expected exactly one {stage} span"
            );
        }
        assert!(
            spans.iter().any(|s| s.name == "fsim.worker"),
            "fault-engine worker spans missing"
        );
        assert!(
            spans.iter().any(|s| s.name == "analyze.run"),
            "netlist-analyzer spans missing"
        );
        // The report carries the delta, which on a fresh recorder is the
        // whole run; its pipeline counters match the report's fields.
        let m = &out.report.metrics;
        assert_eq!(m.counter("pipeline.ptps"), 1);
        assert_eq!(
            m.counter("pipeline.fsim_runs"),
            out.report.fault_sim_runs as u64
        );
        assert_eq!(
            m.counter("label.essential"),
            out.report.essential_instructions as u64
        );
        assert_eq!(
            m.counter("reduce.sbs_removed"),
            out.report.sbs_removed as u64
        );
        assert_eq!(m.counter("verify.errors"), 0);
        assert_eq!(m.counter("analyze.errors"), 0);
        assert_eq!(out.report.analyze.total_errors(), 0);
        // Eval-stage simulations observe too, so the raw engine counter
        // exceeds the method's single budgeted run.
        assert!(m.counter("fsim.runs") > 1);
    }

    #[test]
    fn disabled_observer_leaves_metrics_empty() {
        let compactor = Compactor::default();
        let ptp = generate_imm(&ImmConfig {
            sb_count: 6,
            ..ImmConfig::default()
        });
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let out = compactor.compact(&ptp, &mut ctx).unwrap();
        assert!(out.report.metrics.is_empty());
    }

    #[test]
    fn features_match_table1_shape() {
        let compactor = Compactor::default();
        let ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let ptp = generate_imm(&ImmConfig {
            sb_count: 8,
            ..ImmConfig::default()
        });
        let f = compactor.features(&ptp, &ctx).unwrap();
        assert_eq!(f.size, ptp.size());
        assert!(f.arc_fraction > 0.99);
        assert!(f.duration > 0);
        assert!(f.fault_coverage > 0.0);
    }
}
