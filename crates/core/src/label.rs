//! The instruction labeling algorithm (Fig. 2 of the paper).

use warpstl_fault::FaultSimReport;
use warpstl_gpu::Trace;

/// Per-instruction essential/unessential labels (the LPTP of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    essential: Vec<bool>,
}

impl Labels {
    /// Whether instruction `pc` is essential.
    #[must_use]
    pub fn is_essential(&self, pc: usize) -> bool {
        self.essential[pc]
    }

    /// The number of essential instructions.
    #[must_use]
    pub fn essential_count(&self) -> usize {
        self.essential.iter().filter(|&&e| e).count()
    }

    /// The number of instructions labeled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.essential.len()
    }

    /// Whether the program was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.essential.is_empty()
    }
}

/// Labels each of the `program_len` instructions as essential or
/// unessential.
///
/// Implements the paper's Fig. 2: every instruction `I` starts
/// `unessential`; the tracing report gives the clock-cycle interval of each
/// execution of `I` per warp; `I` becomes `essential` as soon as any of
/// those intervals contains a clock cycle at which the Fault Sim Report
/// records a (new) detection.
///
/// # Examples
///
/// ```
/// use warpstl_core::label_instructions;
/// use warpstl_fault::FaultSimReport;
/// use warpstl_gpu::{Gpu, Kernel, KernelConfig, RunOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = warpstl_isa::asm::assemble("NOP;\nNOP;\nEXIT;")?;
/// let kernel = Kernel::new("t", program, KernelConfig::new(1, 32));
/// let run = Gpu::default().run(&kernel, &RunOptions::tracing())?;
///
/// let mut report = FaultSimReport::new();
/// // Pretend a fault was detected during the second NOP's interval.
/// let second = run.trace.records()[1];
/// report.record_pattern(second.cc_start + 1, 1, 1);
///
/// let labels = label_instructions(3, &run.trace, &report);
/// assert!(!labels.is_essential(0));
/// assert!(labels.is_essential(1));
/// assert_eq!(labels.essential_count(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn label_instructions(program_len: usize, trace: &Trace, report: &FaultSimReport) -> Labels {
    let mut essential = vec![false; program_len];
    for (pc, flag) in essential.iter_mut().enumerate() {
        // "for each warp Wj executed by I ... for each clock cycle k in Wj:
        //  if FSR_cc_k detects faults then essential; go to next instruction"
        for rec in trace.records_for_pc(pc) {
            if report.detections_in_range(rec.cc_start, rec.cc_end) > 0 {
                *flag = true;
                break;
            }
        }
    }
    Labels { essential }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::{Gpu, Kernel, KernelConfig, RunOptions};

    fn traced(src: &str, threads: usize) -> Trace {
        let program = warpstl_isa::asm::assemble(src).unwrap();
        let kernel = Kernel::new("t", program, KernelConfig::new(1, threads));
        Gpu::default()
            .run(&kernel, &RunOptions::tracing())
            .unwrap()
            .trace
    }

    #[test]
    fn no_detections_labels_everything_unessential() {
        let trace = traced("NOP;\nNOP;\nEXIT;", 32);
        let labels = label_instructions(3, &trace, &FaultSimReport::new());
        assert_eq!(labels.essential_count(), 0);
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn any_warp_interval_suffices() {
        // Two warps execute the same instruction at different ccs; a
        // detection during the *second* warp's interval still marks it.
        let trace = traced("IADD R1, R1, 0x1;\nEXIT;", 64);
        let recs: Vec<_> = trace.records_for_pc(0).collect();
        assert_eq!(recs.len(), 2);
        let second = recs[1];
        let mut report = FaultSimReport::new();
        report.record_pattern(second.cc_start, 0, 3);
        let labels = label_instructions(2, &trace, &report);
        assert!(labels.is_essential(0));
        assert!(!labels.is_essential(1));
    }

    #[test]
    fn interval_bounds_are_half_open() {
        let trace = traced("NOP;\nNOP;\nEXIT;", 32);
        let first = trace.records()[0];
        let mut report = FaultSimReport::new();
        // A detection exactly at cc_end belongs to the next instruction.
        report.record_pattern(first.cc_end, 0, 1);
        let labels = label_instructions(3, &trace, &report);
        assert!(!labels.is_essential(0));
        assert!(labels.is_essential(1));
    }

    #[test]
    fn untraced_instructions_stay_unessential() {
        // Dead code after EXIT never executes, so it is never essential.
        let trace = traced("EXIT;\nNOP;", 32);
        let mut report = FaultSimReport::new();
        report.record_pattern(0, 0, 1);
        let labels = label_instructions(2, &trace, &report);
        assert!(!labels.is_essential(1));
    }
}
