//! The whole-STL compaction flow (stage 5 at library scope).
//!
//! The paper compacts an STL per target module: the module's PTPs are
//! processed in STL order against one shared dropping fault list, each with
//! one logic and one fault simulation, and the compacted PTPs replace the
//! originals in the reassembled library. [`compact_stl`] packages that flow
//! — including the paper's SFU configuration (reverse-order patterns) — so
//! callers don't re-implement the grouping.

use warpstl_netlist::modules::ModuleKind;
use warpstl_obs::{Metrics, ObsExt};
use warpstl_programs::Stl;

use crate::{CompactionError, CompactionReport, Compactor};

/// The outcome of compacting a whole STL.
#[derive(Debug, Clone)]
pub struct StlOutcome {
    /// The reassembled STL (compacted PTPs in the original order).
    pub compacted: Stl,
    /// One report per PTP, in STL order.
    pub reports: Vec<CompactionReport>,
}

impl StlOutcome {
    /// Whole-STL size reduction percentage (the paper reports 80.71 % for
    /// its selected PTPs).
    #[must_use]
    pub fn size_reduction_pct(&self) -> f64 {
        let before: usize = self.reports.iter().map(|r| r.original_size).sum();
        let after: usize = self.reports.iter().map(|r| r.compacted_size).sum();
        100.0 * (1.0 - after as f64 / before.max(1) as f64)
    }

    /// Whole-STL duration reduction percentage (the paper reports 64.43 %).
    #[must_use]
    pub fn duration_reduction_pct(&self) -> f64 {
        let before: u64 = self.reports.iter().map(|r| r.original_duration).sum();
        let after: u64 = self.reports.iter().map(|r| r.compacted_duration).sum();
        100.0 * (1.0 - after as f64 / before.max(1) as f64)
    }

    /// Total fault simulations spent by the method (one per PTP).
    #[must_use]
    pub fn fault_sim_runs(&self) -> usize {
        self.reports.iter().map(|r| r.fault_sim_runs).sum()
    }

    /// The whole-STL observability metrics: every report's per-PTP delta
    /// merged back together (empty when no recorder was attached).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut merged = Metrics::default();
        for r in &self.reports {
            merged.merge(&r.metrics);
        }
        merged
    }
}

/// Compacts every PTP of `stl` with the paper's configuration: per-module
/// shared dropping fault lists, STL order, and reverse-order fault
/// simulation for the SFU programs.
///
/// # Errors
///
/// Propagates the first [`CompactionError`] raised by any PTP (a GPU model
/// failure or a verification-gate rejection).
///
/// # Examples
///
/// ```
/// use warpstl_core::compact_stl;
/// use warpstl_programs::generators::{generate_imm, ImmConfig};
/// use warpstl_programs::Stl;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut stl = Stl::new("demo");
/// stl.push(generate_imm(&ImmConfig { sb_count: 6, ..ImmConfig::default() }));
/// let outcome = compact_stl(&stl)?;
/// assert_eq!(outcome.reports.len(), 1);
/// assert_eq!(outcome.fault_sim_runs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn compact_stl(stl: &Stl) -> Result<StlOutcome, CompactionError> {
    compact_stl_with(stl, |module| Compactor {
        reverse_patterns: module == ModuleKind::Sfu,
        ..Compactor::default()
    })
}

/// [`compact_stl`] with a caller-supplied compactor per module (e.g. a
/// non-default GPU configuration or the ARC ablation).
///
/// # Errors
///
/// Propagates the first [`CompactionError`] raised by any PTP.
pub fn compact_stl_with(
    stl: &Stl,
    mut compactor_for: impl FnMut(ModuleKind) -> Compactor,
) -> Result<StlOutcome, CompactionError> {
    let mut compacted = stl.clone();
    let mut reports: Vec<Option<CompactionReport>> = vec![None; stl.len()];

    // Modules in first-appearance order.
    let mut modules: Vec<ModuleKind> = Vec::new();
    for p in stl.ptps() {
        if !modules.contains(&p.target) {
            modules.push(p.target);
        }
    }

    for module in modules {
        let compactor = compactor_for(module);
        let mut module_span = compactor.observer().span("stl", "stl.module");
        module_span.arg("module", format_args!("{module:?}"));
        let mut ctx = compactor.context_for(module);
        let indices: Vec<usize> = stl
            .ptps()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.target == module)
            .map(|(i, _)| i)
            .collect();
        module_span.arg("ptps", indices.len());
        for i in indices {
            let outcome = compactor.compact(&stl.ptps()[i].clone(), &mut ctx)?;
            compacted.replace(i, outcome.compacted);
            reports[i] = Some(outcome.report);
        }
    }
    Ok(StlOutcome {
        compacted,
        reports: reports
            .into_iter()
            .map(|r| r.expect("every PTP compacted"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_programs::generators::{
        generate_imm, generate_mem, generate_sfu_imm, ImmConfig, MemConfig, SfuImmConfig,
    };

    fn small_stl() -> Stl {
        let mut stl = Stl::new("t");
        stl.push(generate_imm(&ImmConfig {
            sb_count: 8,
            ..ImmConfig::default()
        }));
        stl.push(generate_sfu_imm(&SfuImmConfig {
            max_patterns: 8,
            ..SfuImmConfig::default()
        }));
        stl.push(generate_mem(&MemConfig {
            sb_count: 8,
            ..MemConfig::default()
        }));
        stl
    }

    #[test]
    fn compacts_every_ptp_in_order() {
        let stl = small_stl();
        let out = compact_stl(&stl).expect("compacts");
        assert_eq!(out.reports.len(), 3);
        assert_eq!(out.compacted.len(), 3);
        // Order preserved: names line up.
        for (orig, comp) in stl.ptps().iter().zip(out.compacted.ptps()) {
            assert_eq!(orig.name, comp.name);
            assert!(comp.size() <= orig.size());
        }
        // One fault simulation per PTP.
        assert_eq!(out.fault_sim_runs(), 3);
        assert!(out.size_reduction_pct() >= 0.0);
        assert!(out.duration_reduction_pct() >= 0.0);
    }

    #[test]
    fn interleaved_modules_share_their_lists() {
        // IMM and MEM (both DU) share a dropping list even with the SFU
        // program between them: MEM compacts at least as hard as it would
        // alone.
        let stl = small_stl();
        let shared = compact_stl(&stl).expect("compacts");
        let mem_shared = &shared.reports[2];

        let mut solo = Stl::new("solo");
        solo.push(generate_mem(&MemConfig {
            sb_count: 8,
            ..MemConfig::default()
        }));
        let solo_out = compact_stl(&solo).expect("compacts");
        assert!(
            mem_shared.sbs_removed >= solo_out.reports[0].sbs_removed,
            "shared {} < solo {}",
            mem_shared.sbs_removed,
            solo_out.reports[0].sbs_removed
        );
    }

    #[test]
    fn custom_compactor_configuration_applies() {
        let stl = small_stl();
        let out = compact_stl_with(&stl, |_| Compactor {
            respect_arc: true,
            ..Compactor::default()
        })
        .expect("compacts");
        assert_eq!(out.reports.len(), 3);
    }
}
