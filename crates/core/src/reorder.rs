//! Small-Block reordering (extension).
//!
//! The paper's related work includes test-program *reordering* for
//! efficient SBST (its ref. 17): moving the most fault-productive code to
//! the front shortens the time an in-field test needs to reach a given
//! coverage, even when nothing is removed. The same single-fault-simulation
//! data the compaction method collects — which clock cycles first detect
//! which faults — supports a greedy reorder: rank each Small Block by the
//! number of faults it first detects, and emit the most productive blocks
//! first.
//!
//! Reordering is restricted to straight-line PTPs (one basic block), where
//! the self-contained SB structure makes any permutation behaviour-safe;
//! the first SB keeps its place because it carries the address-setup
//! preamble.

use warpstl_fault::FaultSimReport;
use warpstl_gpu::Trace;
use warpstl_isa::Instruction;
use warpstl_programs::{segment_small_blocks, BasicBlocks, Ptp};

/// The outcome of a reorder.
#[derive(Debug, Clone)]
pub struct Reorder {
    /// The reordered PTP.
    pub reordered: Ptp,
    /// First-detection counts per SB, in original order.
    pub sb_detections: Vec<u32>,
    /// The permutation applied (new position -> original SB index).
    pub order: Vec<usize>,
}

/// An error explaining why a PTP cannot be reordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderError(String);

impl std::fmt::Display for ReorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot reorder: {}", self.0)
    }
}

impl std::error::Error for ReorderError {}

/// Greedily reorders the Small Blocks of a straight-line PTP so the blocks
/// that first detect the most faults come first.
///
/// `trace` and `report` are the stage-2/stage-3 artifacts of one traced run
/// and one (dropping) fault simulation of `ptp` — the same inputs the
/// compaction method uses.
///
/// Slot-reading PTPs reorder safely: each SB's load offsets travel with
/// its instructions, so the data image needs no relocation.
///
/// # Errors
///
/// Returns [`ReorderError`] when the PTP has control flow (more than one
/// basic block — moving code across branches would change the test) or too
/// few SBs to matter.
pub fn reorder_ptp(
    ptp: &Ptp,
    trace: &Trace,
    report: &FaultSimReport,
) -> Result<Reorder, ReorderError> {
    let bbs = BasicBlocks::of(&ptp.program);
    if bbs.count() != 1 {
        return Err(ReorderError(format!(
            "{} basic blocks (only straight-line PTPs reorder safely)",
            bbs.count()
        )));
    }
    let sbs = segment_small_blocks(&ptp.program, &bbs);
    if sbs.len() < 3 {
        return Err(ReorderError("fewer than three Small Blocks".into()));
    }

    // Count first detections per SB: a detection at clock cycle cc belongs
    // to the SB whose instruction interval contains cc.
    let mut sb_detections = vec![0u32; sbs.len()];
    let sb_of_pc = |pc: usize| sbs.iter().position(|sb| sb.range().contains(&pc));
    for &(_, cc, _) in report.detections() {
        let rec = trace
            .records()
            .iter()
            .find(|r| r.cc_start <= cc && cc < r.cc_end);
        if let Some(rec) = rec {
            if let Some(i) = sb_of_pc(rec.pc) {
                sb_detections[i] += 1;
            }
        }
    }

    // Greedy order: SB 0 stays (preamble); the rest sort by productivity.
    let mut order: Vec<usize> = (1..sbs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sb_detections[i]));
    order.insert(0, 0);

    let mut program: Vec<Instruction> = Vec::with_capacity(ptp.program.len());
    for &i in &order {
        program.extend(ptp.program[sbs[i].range()].iter().cloned());
    }
    // Trailing non-SB instructions (EXIT and friends) keep their place.
    let tail_start = sbs.last().expect("non-empty").end;
    program.extend(ptp.program[tail_start..].iter().cloned());
    debug_assert_eq!(program.len(), ptp.program.len());

    let mut reordered = ptp.clone();
    reordered.program = program;
    reordered.name = format!("{}(reordered)", ptp.name);
    Ok(Reorder {
        reordered,
        sb_detections,
        order,
    })
}

/// The clock cycle by which `frac` of all first detections in `report`
/// have occurred (the "time to X % of achievable coverage" metric).
///
/// Returns `None` when the report holds no detections.
#[must_use]
pub fn time_to_fraction(report: &FaultSimReport, frac: f64) -> Option<u64> {
    let total = report.detections().len();
    if total == 0 {
        return None;
    }
    let needed = ((total as f64) * frac).ceil() as usize;
    let mut ccs: Vec<u64> = report.detections().iter().map(|&(_, cc, _)| cc).collect();
    ccs.sort_unstable();
    ccs.get(needed.saturating_sub(1).min(total - 1)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compactor;
    use warpstl_netlist::modules::ModuleKind;
    use warpstl_programs::generators::{generate_cntrl, generate_imm, CntrlConfig, ImmConfig};

    fn trace_and_sim(ptp: &Ptp) -> (warpstl_gpu::RunResult, FaultSimReport) {
        use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
        let compactor = Compactor::default();
        let run = compactor.trace(ptp).expect("runs");
        let netlist = ModuleKind::DecoderUnit.build();
        let universe = FaultUniverse::enumerate(&netlist);
        let mut list = FaultList::new(&universe);
        let report = fault_simulate(
            &netlist,
            &run.patterns.du,
            &mut list,
            &FaultSimConfig::default(),
        );
        (run, report)
    }

    #[test]
    fn reorder_moves_detections_earlier() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 16,
            ..ImmConfig::default()
        });
        let (run, report) = trace_and_sim(&ptp);
        let r = reorder_ptp(&ptp, &run.trace, &report).expect("reorders");
        assert_eq!(r.reordered.size(), ptp.size());
        assert_eq!(r.order[0], 0, "preamble SB must stay first");

        // Re-run and re-simulate the reordered PTP: 90 % of the achievable
        // detections must arrive no later than before.
        let (_, before) = (run, report);
        let (_, after) = trace_and_sim(&r.reordered);
        let t_before = time_to_fraction(&before, 0.9).expect("detections");
        let t_after = time_to_fraction(&after, 0.9).expect("detections");
        assert!(
            t_after <= t_before,
            "reorder slowed detection: {t_after} > {t_before}"
        );
        // Total coverage is unchanged (same pattern multiset).
        assert_eq!(after.detections().len(), before.detections().len());
    }

    #[test]
    fn control_flow_is_rejected() {
        let ptp = generate_cntrl(&CntrlConfig {
            regions: 2,
            loops: 1,
            threads: 32,
            ..CntrlConfig::default()
        });
        let (run, report) = trace_and_sim(&ptp);
        assert!(reorder_ptp(&ptp, &run.trace, &report).is_err());
    }

    #[test]
    fn time_to_fraction_edges() {
        let mut r = FaultSimReport::new();
        assert_eq!(time_to_fraction(&r, 0.9), None);
        r.record_detection(0, 10, 0);
        r.record_detection(1, 20, 1);
        r.record_detection(2, 30, 2);
        assert_eq!(time_to_fraction(&r, 0.0), Some(10));
        assert_eq!(time_to_fraction(&r, 0.5), Some(20));
        assert_eq!(time_to_fraction(&r, 1.0), Some(30));
    }
}
