//! The prior-art baseline: iterative compaction with one fault simulation
//! per candidate removal.
//!
//! The CPU-targeted methods the paper compares against (refs. 13–16 in its
//! references) "are based on the production of compacted TP candidates from
//! the original TP, which are then fault simulated to assess the new FC" —
//! the computational cost is proportional to the number of candidates. This
//! module implements that strategy at Small-Block granularity so the
//! benches can reproduce the paper's compaction-time comparison.

use std::time::Instant;

use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig};
use warpstl_gpu::{Gpu, RunOptions, SimError};
use warpstl_programs::{segment_small_blocks, ArcAnalysis, BasicBlocks, Ptp};

use crate::{CompactionReport, ModuleContext, StageTimings};

/// The iterative remove-and-refault-simulate compactor.
#[derive(Debug, Clone, Default)]
pub struct IterativeCompactor {
    /// The GPU model used to re-run every candidate.
    pub gpu: Gpu,
}

impl IterativeCompactor {
    /// Compacts `ptp` by tentatively removing one Small Block at a time,
    /// re-running the program and re-fault-simulating after every removal;
    /// a removal is kept only if the standalone fault coverage does not
    /// drop.
    ///
    /// Returns the compacted PTP and a report whose `fault_sim_runs` /
    /// `logic_sim_runs` document the cost gap against
    /// [`Compactor`](crate::Compactor) (one per candidate versus one
    /// total).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the GPU model.
    pub fn compact(
        &self,
        ptp: &Ptp,
        ctx: &ModuleContext,
    ) -> Result<(Ptp, CompactionReport), SimError> {
        let start = Instant::now();
        let mut fault_sims = 0usize;
        let mut logic_sims = 0usize;

        let mut coverage = |candidate: &Ptp| -> Result<(f64, u64), SimError> {
            let kernel = candidate.to_kernel()?;
            let run = self.gpu.run(&kernel, &RunOptions::capture_all())?;
            logic_sims += 1;
            fault_sims += 1;
            let netlist = ctx.netlist();
            let mut lists: Vec<FaultList> = ctx.fresh_lists();
            let cfg = FaultSimConfig::default();
            let streams = ctx.streams(&run.patterns);
            for (i, stream) in streams.iter().enumerate() {
                if !stream.is_empty() {
                    fault_simulate(netlist, stream, &mut lists[i], &cfg);
                }
            }
            let fc = lists.iter().map(FaultList::coverage).sum::<f64>() / lists.len().max(1) as f64;
            Ok((fc, run.cycles))
        };

        let (fc_before, original_duration) = coverage(ptp)?;
        let mut current = ptp.clone();
        let mut current_fc = fc_before;
        let mut removed_sbs = 0usize;
        let mut total_sbs = 0usize;

        // Repeatedly scan the SB list until no further removal survives.
        loop {
            let bbs = BasicBlocks::of(&current.program);
            let arc = ArcAnalysis::of(&current.program, &bbs);
            let sbs = segment_small_blocks(&current.program, &bbs);
            total_sbs = total_sbs.max(sbs.len() + removed_sbs);
            let mut improved = false;
            for sb in sbs.iter().rev() {
                if !arc.is_admissible(sb.block) {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.program.drain(sb.range());
                remap_targets(&mut candidate.program, sb.start, sb.len());
                let Ok((fc, _)) = coverage(&candidate) else {
                    continue; // removal broke the program: keep the SB
                };
                if fc >= current_fc - 1e-12 {
                    current = candidate;
                    current_fc = fc;
                    removed_sbs += 1;
                    improved = true;
                    break; // re-segment after every accepted removal
                }
            }
            if !improved {
                break;
            }
        }

        let (fc_after, compacted_duration) = coverage(&current)?;
        let report = CompactionReport {
            name: format!("{}(baseline)", ptp.name),
            original_size: ptp.size(),
            compacted_size: current.size(),
            original_duration,
            compacted_duration,
            fc_before,
            fc_after,
            sbs_total: total_sbs,
            sbs_removed: removed_sbs,
            essential_instructions: current.size(),
            fault_sim_runs: fault_sims,
            logic_sim_runs: logic_sims,
            untestable: ctx.untestable_count(),
            compaction_time: start.elapsed(),
            // The iterative baseline interleaves tracing and fault
            // simulation per candidate; it has no per-stage split, and it
            // predates the verification gate.
            stage_timings: StageTimings::default(),
            analyze: warpstl_analyze::AnalyzeStats::default(),
            verify: warpstl_verify::VerifyStats::default(),
            metrics: warpstl_obs::Metrics::default(),
        };
        Ok((current, report))
    }
}

/// Shifts branch targets after removing `len` instructions at `at`.
fn remap_targets(program: &mut [warpstl_isa::Instruction], at: usize, len: usize) {
    for instr in program.iter_mut() {
        if let Some(t) = instr.target() {
            if t >= at + len {
                instr.set_target(t - len);
            } else if t > at {
                instr.set_target(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compactor;
    use warpstl_netlist::modules::ModuleKind;
    use warpstl_programs::generators::{generate_imm, ImmConfig};

    #[test]
    fn baseline_needs_many_fault_sims() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 6,
            ..ImmConfig::default()
        });
        let compactor = Compactor::default();
        let ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let baseline = IterativeCompactor::default();
        let (compacted, report) = baseline.compact(&ptp, &ctx).unwrap();
        assert!(compacted.size() <= ptp.size());
        // One fault simulation per candidate, versus the method's single
        // one: that is the paper's headline complexity argument.
        assert!(
            report.fault_sim_runs > 6,
            "only {} fault sims",
            report.fault_sim_runs
        );
        // Coverage never drops below the original by construction.
        assert!(report.fc_after >= report.fc_before - 1e-9);
    }

    #[test]
    fn baseline_and_method_agree_on_direction() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 5,
            ..ImmConfig::default()
        });
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let fast = compactor.compact(&ptp, &mut ctx).unwrap();
        let ctx2 = compactor.context_for(ModuleKind::DecoderUnit);
        let (slow, slow_report) = IterativeCompactor::default().compact(&ptp, &ctx2).unwrap();
        assert!(fast.compacted.size() <= ptp.size());
        assert!(slow.size() <= ptp.size());
        assert!(slow_report.fault_sim_runs > fast.report.fault_sim_runs);
    }
}
