//! Per-module compaction context: the netlist and the shared fault lists.

use warpstl_fault::{FaultList, FaultUniverse};
use warpstl_gpu::ModulePatterns;
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Netlist, PatternSeq};

/// The per-target-module state shared across the PTPs of an STL: the module
/// netlist, its collapsed fault universe, and one fault list per physical
/// instance (8 SP cores, 2 SFUs, 1 DU).
///
/// This is the paper's fault-dropping mechanism: "this fault list report
/// initially includes all faults of a target module; after each fault
/// simulation (one per PTP) the fault list is updated and detected faults
/// are removed."
///
/// # Examples
///
/// ```
/// use warpstl_core::Compactor;
/// use warpstl_netlist::modules::ModuleKind;
///
/// let ctx = Compactor::default().context_for(ModuleKind::Sfu);
/// assert_eq!(ctx.instances(), 2);
/// assert_eq!(ctx.coverage(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModuleContext {
    module: ModuleKind,
    netlist: Netlist,
    universe: FaultUniverse,
    lists: Vec<FaultList>,
}

impl ModuleContext {
    /// Builds the context for `module` with `instances` fault lists.
    #[must_use]
    pub fn new(module: ModuleKind, instances: usize) -> ModuleContext {
        let netlist = module.build();
        let universe = FaultUniverse::enumerate(&netlist);
        let lists = (0..instances).map(|_| FaultList::new(&universe)).collect();
        ModuleContext {
            module,
            netlist,
            universe,
            lists,
        }
    }

    /// The target module.
    #[must_use]
    pub fn module(&self) -> ModuleKind {
        self.module
    }

    /// The gate-level netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The collapsed fault universe.
    #[must_use]
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// The number of module instances (= fault lists).
    #[must_use]
    pub fn instances(&self) -> usize {
        self.lists.len()
    }

    /// The shared fault list of instance `i`.
    #[must_use]
    pub fn list(&self, i: usize) -> &FaultList {
        &self.lists[i]
    }

    /// Mutable access to instance `i`'s fault list.
    pub fn list_mut(&mut self, i: usize) -> &mut FaultList {
        &mut self.lists[i]
    }

    /// Splits the borrow: the (shared) netlist alongside all (mutable)
    /// per-instance fault lists, so fault simulation can borrow both at
    /// once without cloning the netlist.
    pub fn netlist_and_lists_mut(&mut self) -> (&Netlist, &mut [FaultList]) {
        (&self.netlist, &mut self.lists)
    }

    /// Fresh fault lists (for standalone evaluations).
    #[must_use]
    pub fn fresh_lists(&self) -> Vec<FaultList> {
        (0..self.instances())
            .map(|_| FaultList::new(&self.universe))
            .collect()
    }

    /// The per-instance pattern streams of this module from a capture.
    #[must_use]
    pub fn streams<'a>(&self, patterns: &'a ModulePatterns) -> Vec<&'a PatternSeq> {
        match self.module {
            ModuleKind::DecoderUnit => vec![&patterns.du],
            ModuleKind::SpCore => patterns.sp.iter().collect(),
            ModuleKind::Sfu => patterns.sfu.iter().collect(),
            ModuleKind::Fp32 => patterns.fp32.iter().collect(),
        }
    }

    /// Aggregate fault coverage across all instances (weighted over the
    /// full universe of every instance).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(FaultList::coverage).sum::<f64>() / self.lists.len() as f64
    }

    /// Total faults across instances (the paper counts the functional
    /// units' faults over all 8 SP cores / 2 SFUs).
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.lists
            .iter()
            .map(warpstl_fault::FaultList::total_weight)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_match_module_kind() {
        let c = ModuleContext::new(ModuleKind::SpCore, ModuleKind::SpCore.instances_per_sm());
        assert_eq!(c.instances(), 8);
        assert_eq!(c.module(), ModuleKind::SpCore);
        assert!(c.total_faults() > 8 * 1000);
    }

    #[test]
    fn streams_select_the_right_capture() {
        let c = ModuleContext::new(ModuleKind::Sfu, 2);
        let caps = ModulePatterns::new(8, 2);
        assert_eq!(c.streams(&caps).len(), 2);
        let c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(c.streams(&caps).len(), 1);
    }

    #[test]
    fn coverage_averages_instances() {
        let mut c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(c.coverage(), 0.0);
        c.list_mut(0).begin_run();
        for id in 0..c.list(0).len() {
            c.list_mut(0).mark_detected(id, 0, 0);
        }
        assert!((c.coverage() - 1.0).abs() < 1e-12);
    }
}
