//! Per-module compaction context: the netlist and the shared fault lists.

use std::sync::Arc;

use warpstl_analyze::{analyze, Analysis};
use warpstl_fault::{
    BridgeConfig, BridgeList, BridgeUniverse, DominanceView, Fault, FaultId, FaultList, FaultModel,
    FaultSite, FaultUniverse, Polarity, SimGuide,
};
use warpstl_gpu::ModulePatterns;
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Levelization, NetId, Netlist, PatternSeq};
use warpstl_store::{key_netlist, CacheCtx, Key, Store};

/// The per-target-module state shared across the PTPs of an STL: the module
/// netlist, its collapsed fault universe, and one fault list per physical
/// instance (8 SP cores, 2 SFUs, 1 DU).
///
/// This is the paper's fault-dropping mechanism: "this fault list report
/// initially includes all faults of a target module; after each fault
/// simulation (one per PTP) the fault list is updated and detected faults
/// are removed."
///
/// # Examples
///
/// ```
/// use warpstl_core::Compactor;
/// use warpstl_netlist::modules::ModuleKind;
///
/// let ctx = Compactor::default().context_for(ModuleKind::Sfu);
/// assert_eq!(ctx.instances(), 2);
/// assert_eq!(ctx.coverage(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModuleContext {
    module: ModuleKind,
    netlist: Netlist,
    universe: FaultUniverse,
    lists: Vec<FaultList>,
    analysis: Analysis,
    dominance: DominanceView,
    order_keys: Vec<f64>,
    levels: Levelization,
    /// Per collapsed-class flag: statically proven untestable.
    untestable: Vec<bool>,
    /// Whether the simulation guide prunes proven-untestable classes from
    /// the target set (list marking happens regardless).
    prune: bool,
    store: Option<Arc<Store>>,
    netlist_key: Key,
    /// The active fault model; the bridging state below is populated iff
    /// this is [`FaultModel::Bridging`].
    model: FaultModel,
    bridge: Option<BridgeState>,
}

/// The bridging counterpart of the stuck-at `universe` + `lists` pair: a
/// deterministically sampled two-net bridge universe and one dropping
/// [`BridgeList`] per instance. Untestability proofs and dominance are
/// stuck-at constructs, so bridging lists carry neither — every sampled
/// bridge counts in the coverage denominator.
#[derive(Debug, Clone)]
struct BridgeState {
    universe: BridgeUniverse,
    lists: Vec<BridgeList>,
}

/// Maps the analyzer's per-site untestability proofs and equivalence
/// merges onto the collapsed fault classes of `universe`: the returned
/// bitmap flags every class with a proven-untestable member (equivalent
/// faults share test sets, so one proven member condemns the class), and
/// the pairs are `(pin-fault class, output-fault class)` equivalences for
/// the dominance view. Untestability propagates across the pairs before
/// they are returned.
fn map_untestability(
    netlist: &Netlist,
    universe: &FaultUniverse,
    analysis: &Analysis,
) -> (Vec<bool>, Vec<(FaultId, FaultId)>) {
    let unt = &analysis.untestable;
    let mut bitmap = vec![false; universe.collapsed_len()];
    let rep = |site: FaultSite, stuck: bool| {
        universe.rep_of(Fault::new(site, Polarity::BOTH[usize::from(stuck)]))
    };
    // The proofs are indexed by site, so walk every enumerable site and
    // map it through the universe — checking only class representatives
    // would miss proofs landing on a non-representative member.
    for (i, g) in netlist.gates().iter().enumerate() {
        let id = NetId(i as u32);
        for stuck in [false, true] {
            if unt.output_untestable(i, stuck) {
                if let Some(c) = rep(FaultSite::Output(id), stuck) {
                    bitmap[c] = true;
                }
            }
            for p in 0..g.kind.arity() {
                if unt.pin_untestable(i, p, stuck) {
                    if let Some(c) = rep(FaultSite::InputPin(id, p as u8), stuck) {
                        bitmap[c] = true;
                    }
                }
            }
        }
    }
    let pairs: Vec<(FaultId, FaultId)> = unt
        .merges()
        .iter()
        .filter_map(|m| {
            let id = NetId(m.gate as u32);
            let dropped = rep(FaultSite::InputPin(id, m.pin), m.pin_polarity)?;
            let kept = rep(FaultSite::Output(id), m.out_polarity)?;
            Some((dropped, kept))
        })
        .collect();
    // Equivalent classes share test sets: untestability crosses the
    // pairs (iterated, since merges can chain through shared classes).
    loop {
        let mut changed = false;
        for &(a, b) in &pairs {
            if bitmap[a] != bitmap[b] {
                bitmap[a] = true;
                bitmap[b] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (bitmap, pairs)
}

impl ModuleContext {
    /// Builds the context for `module` with `instances` fault lists.
    ///
    /// The one-pass static analysis (SCOAP measures, lints, implication
    /// closure), the dominance view — strengthened with the analyzer's
    /// implication-derived fault equivalences — and the untestability
    /// bitmap all run here, once per module; every PTP compacted against
    /// this context reuses them. Each fault list is born with the proven
    /// classes [marked untestable](FaultList::mark_untestable), so
    /// coverage denominators count testable faults only.
    #[must_use]
    pub fn new(module: ModuleKind, instances: usize) -> ModuleContext {
        let netlist = module.build();
        let universe = FaultUniverse::enumerate(&netlist);
        let analysis = analyze(&netlist);
        let (untestable, equiv_pairs) = map_untestability(&netlist, &universe, &analysis);
        let mut dominance = universe.dominance(&netlist);
        dominance.extend_with_equivalences(&equiv_pairs);
        let lists = (0..instances)
            .map(|_| {
                let mut l = FaultList::new(&universe);
                l.mark_untestable(&untestable);
                l
            })
            .collect();
        let order_keys = analysis.scoap.observability_keys();
        let levels = netlist.levelize();
        let netlist_key = key_netlist(&netlist);
        ModuleContext {
            module,
            netlist,
            universe,
            lists,
            analysis,
            dominance,
            order_keys,
            levels,
            untestable,
            prune: true,
            store: None,
            netlist_key,
            model: FaultModel::StuckAt,
            bridge: None,
        }
    }

    /// Selects the fault model. [`FaultModel::Bridging`] samples the
    /// two-net bridge universe (deterministic in `config`) and replaces
    /// the per-instance ledgers with [`BridgeList`]s; the stuck-at
    /// universe and analysis products stay available (the analyze gate is
    /// model-independent). [`FaultModel::StuckAt`] restores the default.
    #[must_use]
    pub fn with_model(mut self, model: FaultModel, config: &BridgeConfig) -> ModuleContext {
        self.model = model;
        self.bridge = match model {
            FaultModel::StuckAt => None,
            FaultModel::Bridging => {
                let universe = BridgeUniverse::sample(&self.netlist, config);
                let lists = (0..self.lists.len()).map(|_| universe.new_list()).collect();
                Some(BridgeState { universe, lists })
            }
        };
        self
    }

    /// The active fault model.
    #[must_use]
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The sampled bridge universe (bridging model only).
    #[must_use]
    pub fn bridge_universe(&self) -> Option<&BridgeUniverse> {
        self.bridge.as_ref().map(|b| &b.universe)
    }

    /// The shared bridge list of instance `i` (bridging model only).
    ///
    /// # Panics
    ///
    /// Panics when the context is not in bridging mode.
    #[must_use]
    pub fn bridge_list(&self, i: usize) -> &BridgeList {
        &self.bridge.as_ref().expect("bridging model").lists[i]
    }

    /// Splits the borrow for the bridging model: the shared netlist and
    /// cache handle alongside all per-instance bridge lists — the
    /// bridging counterpart of [`netlist_and_lists_mut`].
    ///
    /// # Panics
    ///
    /// Panics when the context is not in bridging mode.
    ///
    /// [`netlist_and_lists_mut`]: ModuleContext::netlist_and_lists_mut
    pub fn bridge_netlist_and_lists_mut(&mut self) -> (&Netlist, &mut [BridgeList], CacheCtx<'_>) {
        let cache = CacheCtx {
            store: self.store.as_deref(),
            netlist_key: self.netlist_key,
        };
        let bridge = self.bridge.as_mut().expect("bridging model");
        (&self.netlist, &mut bridge.lists, cache)
    }

    /// Fresh bridge lists over the sampled universe (for standalone
    /// evaluations in bridging mode).
    ///
    /// # Panics
    ///
    /// Panics when the context is not in bridging mode.
    #[must_use]
    pub fn fresh_bridge_lists(&self) -> Vec<BridgeList> {
        let bridge = self.bridge.as_ref().expect("bridging model");
        (0..self.instances())
            .map(|_| bridge.universe.new_list())
            .collect()
    }

    /// Enables or disables static pruning: when disabled, the simulation
    /// guide omits the untestable bitmap, so the engine simulates every
    /// target class. The fault lists keep their untestability marks either
    /// way — detected sets and coverage are identical in both modes (the
    /// pruned classes are provably undetectable), making this a
    /// cross-check knob, not a semantics knob.
    #[must_use]
    pub fn with_pruning(mut self, prune: bool) -> ModuleContext {
        self.prune = prune;
        self
    }

    /// Attaches (or detaches) the artifact store: every cacheable stage
    /// run against this context — the analyze gate and each fault-engine
    /// invocation — then consults it before computing. PTPs sharing the
    /// context (the STL flow) share its hits.
    #[must_use]
    pub fn with_store(mut self, store: Option<Arc<Store>>) -> ModuleContext {
        self.store = store;
        self
    }

    /// The attached artifact store, when caching is enabled.
    #[must_use]
    pub fn store(&self) -> Option<&Store> {
        self.store.as_deref()
    }

    /// The canonical content key of this module's netlist (all per-module
    /// artifact keys derive from it).
    #[must_use]
    pub fn netlist_key(&self) -> Key {
        self.netlist_key
    }

    /// The cache handle fault-simulation call sites thread through to
    /// [`cached_fault_sim`](warpstl_store::cached_fault_sim).
    #[must_use]
    pub fn cache_ctx(&self) -> CacheCtx<'_> {
        CacheCtx {
            store: self.store.as_deref(),
            netlist_key: self.netlist_key,
        }
    }

    /// The target module.
    #[must_use]
    pub fn module(&self) -> ModuleKind {
        self.module
    }

    /// The gate-level netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The collapsed fault universe.
    #[must_use]
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// The module's static analysis (SCOAP measures + lint report).
    #[must_use]
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The module's fault-dominance view over the collapsed universe.
    #[must_use]
    pub fn dominance(&self) -> &DominanceView {
        &self.dominance
    }

    /// Per-gate observability keys (hardest-first ordering uses them).
    #[must_use]
    pub fn order_keys(&self) -> &[f64] {
        &self.order_keys
    }

    /// The module's levelization (rank-major gate ordering); the levelized
    /// simulation kernel evaluates over it.
    #[must_use]
    pub fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// The per-class untestability bitmap (indexed by collapsed class id).
    #[must_use]
    pub fn untestable_bitmap(&self) -> &[bool] {
        &self.untestable
    }

    /// Number of fault classes statically proven untestable. The proofs
    /// are stuck-at constructs; in bridging mode this is always 0.
    #[must_use]
    pub fn untestable_count(&self) -> usize {
        match self.model {
            FaultModel::StuckAt => self.untestable.iter().filter(|&&u| u).count(),
            FaultModel::Bridging => 0,
        }
    }

    /// Whether the simulation guide prunes proven-untestable classes.
    #[must_use]
    pub fn pruning(&self) -> bool {
        self.prune
    }

    /// The simulation guide (dominance + untestable pruning + ordering)
    /// borrowed from this context — hand it to
    /// [`fault_simulate_guided`](warpstl_fault::fault_simulate_guided).
    #[must_use]
    pub fn sim_guide(&self) -> SimGuide<'_> {
        SimGuide {
            dominance: Some(&self.dominance),
            untestable: self.prune.then_some(self.untestable.as_slice()),
            order_keys: Some(&self.order_keys),
            levels: Some(&self.levels),
        }
    }

    /// The number of module instances (= fault lists).
    #[must_use]
    pub fn instances(&self) -> usize {
        self.lists.len()
    }

    /// The shared fault list of instance `i`.
    #[must_use]
    pub fn list(&self, i: usize) -> &FaultList {
        &self.lists[i]
    }

    /// Mutable access to instance `i`'s fault list.
    pub fn list_mut(&mut self, i: usize) -> &mut FaultList {
        &mut self.lists[i]
    }

    /// Splits the borrow: the (shared) netlist, simulation guide, and
    /// cache handle alongside all (mutable) per-instance fault lists, so
    /// fault simulation can borrow everything at once without cloning.
    pub fn netlist_and_lists_mut(
        &mut self,
    ) -> (&Netlist, &mut [FaultList], SimGuide<'_>, CacheCtx<'_>) {
        let guide = SimGuide {
            dominance: Some(&self.dominance),
            untestable: self.prune.then_some(self.untestable.as_slice()),
            order_keys: Some(&self.order_keys),
            levels: Some(&self.levels),
        };
        let cache = CacheCtx {
            store: self.store.as_deref(),
            netlist_key: self.netlist_key,
        };
        (&self.netlist, &mut self.lists, guide, cache)
    }

    /// Fresh fault lists (for standalone evaluations), untestability marks
    /// applied so their coverage uses the same denominator as the shared
    /// lists.
    #[must_use]
    pub fn fresh_lists(&self) -> Vec<FaultList> {
        (0..self.instances())
            .map(|_| {
                let mut l = FaultList::new(&self.universe);
                l.mark_untestable(&self.untestable);
                l
            })
            .collect()
    }

    /// The per-instance pattern streams of this module from a capture.
    #[must_use]
    pub fn streams<'a>(&self, patterns: &'a ModulePatterns) -> Vec<&'a PatternSeq> {
        match self.module {
            ModuleKind::DecoderUnit => vec![&patterns.du],
            ModuleKind::SpCore => patterns.sp.iter().collect(),
            ModuleKind::Sfu => patterns.sfu.iter().collect(),
            ModuleKind::Fp32 => patterns.fp32.iter().collect(),
        }
    }

    /// Aggregate fault coverage across all instances (weighted over the
    /// full universe of every instance), under the active fault model.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if let Some(bridge) = &self.bridge {
            if bridge.lists.is_empty() {
                return 0.0;
            }
            return bridge.lists.iter().map(BridgeList::coverage).sum::<f64>()
                / bridge.lists.len() as f64;
        }
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(FaultList::coverage).sum::<f64>() / self.lists.len() as f64
    }

    /// Total faults across instances under the active fault model (the
    /// paper counts the functional units' faults over all 8 SP cores /
    /// 2 SFUs).
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        if let Some(bridge) = &self.bridge {
            return bridge.lists.iter().map(BridgeList::total_weight).sum();
        }
        self.lists
            .iter()
            .map(warpstl_fault::FaultList::total_weight)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_match_module_kind() {
        let c = ModuleContext::new(ModuleKind::SpCore, ModuleKind::SpCore.instances_per_sm());
        assert_eq!(c.instances(), 8);
        assert_eq!(c.module(), ModuleKind::SpCore);
        assert!(c.total_faults() > 8 * 1000);
    }

    #[test]
    fn streams_select_the_right_capture() {
        let c = ModuleContext::new(ModuleKind::Sfu, 2);
        let caps = ModulePatterns::new(8, 2);
        assert_eq!(c.streams(&caps).len(), 2);
        let c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(c.streams(&caps).len(), 1);
    }

    #[test]
    fn context_carries_analysis_products() {
        let c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        // Bundled modules pass the lint gate.
        assert!(c.analysis().is_clean());
        // Dominance genuinely shrinks the collapsed universe...
        assert!(!c.dominance().is_identity());
        assert!(c.dominance().reduction_ratio() < 1.0);
        // ...and the ordering keys cover every gate.
        assert_eq!(c.order_keys().len(), c.netlist().gates().len());
        let guide = c.sim_guide();
        assert!(guide.dominance.is_some() && guide.order_keys.is_some());
    }

    #[test]
    fn pruning_toggle_leaves_detection_bit_identical() {
        // The acceptance property behind `--no-prune`: simulating with the
        // untestable classes pruned from the target set detects exactly
        // the same faults, with the same stamps, as simulating them all.
        let netlist = ModuleKind::DecoderUnit.build();
        let width = netlist.inputs().width();
        let mut patterns = PatternSeq::new(width);
        let mut seed = 0x5eed_0001_u64;
        for cc in 0..48u64 {
            let bits: Vec<bool> = (0..width)
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed & 1 == 1
                })
                .collect();
            patterns.push_bits(cc, &bits);
        }
        let run = |prune: bool| {
            let mut ctx = ModuleContext::new(ModuleKind::DecoderUnit, 1).with_pruning(prune);
            assert_eq!(ctx.sim_guide().untestable.is_some(), prune);
            let (netlist, lists, guide, _) = ctx.netlist_and_lists_mut();
            let report = warpstl_fault::fault_simulate_guided(
                netlist,
                &patterns,
                &mut lists[0],
                &warpstl_fault::FaultSimConfig::default(),
                None,
                &guide,
            );
            (ctx.list(0).to_report_text(), ctx.coverage(), report)
        };
        let (text_on, cov_on, rep_on) = run(true);
        let (text_off, cov_off, rep_off) = run(false);
        assert_eq!(text_on, text_off);
        assert_eq!(cov_on, cov_off);
        assert_eq!(rep_on.total_detected(), rep_off.total_detected());
        // The pruned run accounts for exactly the proven classes; the
        // unpruned run prunes nothing.
        let ctx = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(rep_on.untestable_count() as usize, ctx.untestable_count());
        assert_eq!(rep_off.untestable_count(), 0);
        assert_eq!(ctx.untestable_count(), ctx.list(0).untestable_count());
    }

    #[test]
    fn coverage_averages_instances() {
        let mut c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(c.coverage(), 0.0);
        c.list_mut(0).begin_run();
        for id in 0..c.list(0).len() {
            c.list_mut(0).mark_detected(id, 0, 0);
        }
        assert!((c.coverage() - 1.0).abs() < 1e-12);
    }
}
