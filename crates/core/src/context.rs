//! Per-module compaction context: the netlist and the shared fault lists.

use std::sync::Arc;

use warpstl_analyze::{analyze, Analysis};
use warpstl_fault::{DominanceView, FaultList, FaultUniverse, SimGuide};
use warpstl_gpu::ModulePatterns;
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Levelization, Netlist, PatternSeq};
use warpstl_store::{key_netlist, CacheCtx, Key, Store};

/// The per-target-module state shared across the PTPs of an STL: the module
/// netlist, its collapsed fault universe, and one fault list per physical
/// instance (8 SP cores, 2 SFUs, 1 DU).
///
/// This is the paper's fault-dropping mechanism: "this fault list report
/// initially includes all faults of a target module; after each fault
/// simulation (one per PTP) the fault list is updated and detected faults
/// are removed."
///
/// # Examples
///
/// ```
/// use warpstl_core::Compactor;
/// use warpstl_netlist::modules::ModuleKind;
///
/// let ctx = Compactor::default().context_for(ModuleKind::Sfu);
/// assert_eq!(ctx.instances(), 2);
/// assert_eq!(ctx.coverage(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModuleContext {
    module: ModuleKind,
    netlist: Netlist,
    universe: FaultUniverse,
    lists: Vec<FaultList>,
    analysis: Analysis,
    dominance: DominanceView,
    order_keys: Vec<f64>,
    levels: Levelization,
    store: Option<Arc<Store>>,
    netlist_key: Key,
}

impl ModuleContext {
    /// Builds the context for `module` with `instances` fault lists.
    ///
    /// The one-pass static analysis (SCOAP measures, lints) and the
    /// dominance view run here, once per module — every PTP compacted
    /// against this context reuses them.
    #[must_use]
    pub fn new(module: ModuleKind, instances: usize) -> ModuleContext {
        let netlist = module.build();
        let universe = FaultUniverse::enumerate(&netlist);
        let lists = (0..instances).map(|_| FaultList::new(&universe)).collect();
        let analysis = analyze(&netlist);
        let dominance = universe.dominance(&netlist);
        let order_keys = analysis.scoap.observability_keys();
        let levels = netlist.levelize();
        let netlist_key = key_netlist(&netlist);
        ModuleContext {
            module,
            netlist,
            universe,
            lists,
            analysis,
            dominance,
            order_keys,
            levels,
            store: None,
            netlist_key,
        }
    }

    /// Attaches (or detaches) the artifact store: every cacheable stage
    /// run against this context — the analyze gate and each fault-engine
    /// invocation — then consults it before computing. PTPs sharing the
    /// context (the STL flow) share its hits.
    #[must_use]
    pub fn with_store(mut self, store: Option<Arc<Store>>) -> ModuleContext {
        self.store = store;
        self
    }

    /// The attached artifact store, when caching is enabled.
    #[must_use]
    pub fn store(&self) -> Option<&Store> {
        self.store.as_deref()
    }

    /// The canonical content key of this module's netlist (all per-module
    /// artifact keys derive from it).
    #[must_use]
    pub fn netlist_key(&self) -> Key {
        self.netlist_key
    }

    /// The cache handle fault-simulation call sites thread through to
    /// [`cached_fault_sim`](warpstl_store::cached_fault_sim).
    #[must_use]
    pub fn cache_ctx(&self) -> CacheCtx<'_> {
        CacheCtx {
            store: self.store.as_deref(),
            netlist_key: self.netlist_key,
        }
    }

    /// The target module.
    #[must_use]
    pub fn module(&self) -> ModuleKind {
        self.module
    }

    /// The gate-level netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The collapsed fault universe.
    #[must_use]
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// The module's static analysis (SCOAP measures + lint report).
    #[must_use]
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The module's fault-dominance view over the collapsed universe.
    #[must_use]
    pub fn dominance(&self) -> &DominanceView {
        &self.dominance
    }

    /// Per-gate observability keys (hardest-first ordering uses them).
    #[must_use]
    pub fn order_keys(&self) -> &[f64] {
        &self.order_keys
    }

    /// The module's levelization (rank-major gate ordering); the levelized
    /// simulation kernel evaluates over it.
    #[must_use]
    pub fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// The simulation guide (dominance + ordering) borrowed from this
    /// context — hand it to
    /// [`fault_simulate_guided`](warpstl_fault::fault_simulate_guided).
    #[must_use]
    pub fn sim_guide(&self) -> SimGuide<'_> {
        SimGuide {
            dominance: Some(&self.dominance),
            order_keys: Some(&self.order_keys),
            levels: Some(&self.levels),
        }
    }

    /// The number of module instances (= fault lists).
    #[must_use]
    pub fn instances(&self) -> usize {
        self.lists.len()
    }

    /// The shared fault list of instance `i`.
    #[must_use]
    pub fn list(&self, i: usize) -> &FaultList {
        &self.lists[i]
    }

    /// Mutable access to instance `i`'s fault list.
    pub fn list_mut(&mut self, i: usize) -> &mut FaultList {
        &mut self.lists[i]
    }

    /// Splits the borrow: the (shared) netlist, simulation guide, and
    /// cache handle alongside all (mutable) per-instance fault lists, so
    /// fault simulation can borrow everything at once without cloning.
    pub fn netlist_and_lists_mut(
        &mut self,
    ) -> (&Netlist, &mut [FaultList], SimGuide<'_>, CacheCtx<'_>) {
        let guide = SimGuide {
            dominance: Some(&self.dominance),
            order_keys: Some(&self.order_keys),
            levels: Some(&self.levels),
        };
        let cache = CacheCtx {
            store: self.store.as_deref(),
            netlist_key: self.netlist_key,
        };
        (&self.netlist, &mut self.lists, guide, cache)
    }

    /// Fresh fault lists (for standalone evaluations).
    #[must_use]
    pub fn fresh_lists(&self) -> Vec<FaultList> {
        (0..self.instances())
            .map(|_| FaultList::new(&self.universe))
            .collect()
    }

    /// The per-instance pattern streams of this module from a capture.
    #[must_use]
    pub fn streams<'a>(&self, patterns: &'a ModulePatterns) -> Vec<&'a PatternSeq> {
        match self.module {
            ModuleKind::DecoderUnit => vec![&patterns.du],
            ModuleKind::SpCore => patterns.sp.iter().collect(),
            ModuleKind::Sfu => patterns.sfu.iter().collect(),
            ModuleKind::Fp32 => patterns.fp32.iter().collect(),
        }
    }

    /// Aggregate fault coverage across all instances (weighted over the
    /// full universe of every instance).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(FaultList::coverage).sum::<f64>() / self.lists.len() as f64
    }

    /// Total faults across instances (the paper counts the functional
    /// units' faults over all 8 SP cores / 2 SFUs).
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.lists
            .iter()
            .map(warpstl_fault::FaultList::total_weight)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_match_module_kind() {
        let c = ModuleContext::new(ModuleKind::SpCore, ModuleKind::SpCore.instances_per_sm());
        assert_eq!(c.instances(), 8);
        assert_eq!(c.module(), ModuleKind::SpCore);
        assert!(c.total_faults() > 8 * 1000);
    }

    #[test]
    fn streams_select_the_right_capture() {
        let c = ModuleContext::new(ModuleKind::Sfu, 2);
        let caps = ModulePatterns::new(8, 2);
        assert_eq!(c.streams(&caps).len(), 2);
        let c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(c.streams(&caps).len(), 1);
    }

    #[test]
    fn context_carries_analysis_products() {
        let c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        // Bundled modules pass the lint gate.
        assert!(c.analysis().is_clean());
        // Dominance genuinely shrinks the collapsed universe...
        assert!(!c.dominance().is_identity());
        assert!(c.dominance().reduction_ratio() < 1.0);
        // ...and the ordering keys cover every gate.
        assert_eq!(c.order_keys().len(), c.netlist().gates().len());
        let guide = c.sim_guide();
        assert!(guide.dominance.is_some() && guide.order_keys.is_some());
    }

    #[test]
    fn coverage_averages_instances() {
        let mut c = ModuleContext::new(ModuleKind::DecoderUnit, 1);
        assert_eq!(c.coverage(), 0.0);
        c.list_mut(0).begin_run();
        for id in 0..c.list(0).len() {
            c.list_mut(0).mark_detected(id, 0, 0);
        }
        assert!((c.coverage() - 1.0).abs() < 1e-12);
    }
}
