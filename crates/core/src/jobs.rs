//! Job-shaped entry points around [`Compactor`]: one function per unit of
//! work a front-end can submit — compact a PTP, compact an STL, analyze a
//! module, lint a PTP — taking *text* in and returning *text* out.
//!
//! The CLI and `warpstl serve` both dispatch through these functions, so
//! a job submitted over HTTP is byte-identical to the same invocation on
//! the command line by construction: the report JSON is
//! [`CompactionReport::to_json`] verbatim, and the STL report array uses
//! the same [`stl_report_array`] formatting the CLI writes to `--json`.
//!
//! Errors split along the protocol boundary: [`JobError::BadRequest`] is
//! the caller's fault (unparseable PTP/STL text, an unknown module name —
//! HTTP 400), [`JobError::Failed`] is a compaction/verification failure on
//! well-formed input (HTTP 422).

use std::sync::Arc;

use warpstl_fault::{BridgeConfig, FaultModel, FaultSimConfig, SimBackend};
use warpstl_gpu::{Gpu, GpuConfig};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::Netlist;
use warpstl_obs::Recorder;
use warpstl_programs::serialize::{ptp_from_text, ptp_to_text, stl_from_text, stl_to_text};
use warpstl_store::Store;

use crate::pipeline::Compactor;
use crate::report::CompactionReport;
use crate::stl_flow::compact_stl_with;

/// Per-job knobs — the job-protocol face of the CLI's compact flags.
#[derive(Debug, Clone)]
pub struct JobOptions {
    /// Reverse-order fault simulation (`--reverse`; per-module SFU
    /// reversal still applies inside STL jobs regardless).
    pub reverse: bool,
    /// Honor ARC labels during reduction (`--no-arc` clears it).
    pub respect_arc: bool,
    /// Prune proven-untestable faults before simulating (`--no-prune`
    /// clears it).
    pub prune: bool,
    /// Fault-simulation backend (the `--sim-backend` flag).
    pub backend: SimBackend,
    /// Engine worker threads; `0` defers to the engine's own resolution
    /// (environment, then host parallelism). A serving front-end sets this
    /// to its per-worker share so the pool does not oversubscribe.
    pub threads: usize,
    /// GPU shape override: the number of SP lanes per SM (`--lanes`).
    /// `0` keeps the default shape; otherwise it must be one of the
    /// FlexGripPlus options (8, 16 or 32) — anything else is a
    /// [`JobError::BadRequest`].
    pub lanes: usize,
    /// The fault model to compact against (`--fault-model`).
    pub fault_model: FaultModel,
    /// Candidate net-pair budget for the bridging universe (`0` keeps the
    /// model's default); ignored under stuck-at.
    pub bridge_pairs: usize,
    /// Drop detected faults between patterns (on by default; clearing it
    /// also disables early exit, so tallies cover the full sequence).
    pub drop_detected: bool,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        JobOptions {
            reverse: false,
            respect_arc: true,
            prune: true,
            backend: SimBackend::Auto,
            threads: 0,
            lanes: 0,
            fault_model: FaultModel::StuckAt,
            bridge_pairs: 0,
            drop_detected: true,
        }
    }
}

/// The GPU shape for a lane-count override: `0` is the default shape,
/// 8/16/32 are the FlexGripPlus configurations.
///
/// # Errors
///
/// [`JobError::BadRequest`] on any other lane count — validated here so
/// job submission never reaches [`GpuConfig::with_sp_cores`]'s panic.
pub fn gpu_for_lanes(lanes: usize) -> Result<Gpu, JobError> {
    match lanes {
        0 => Ok(Gpu::default()),
        8 | 16 | 32 => Ok(Gpu::new(GpuConfig::with_sp_cores(lanes))),
        other => Err(JobError::BadRequest(format!(
            "invalid lane count {other} (expected 8, 16 or 32)"
        ))),
    }
}

impl JobOptions {
    fn compactor(
        &self,
        store: Option<Arc<Store>>,
        obs: Option<Arc<Recorder>>,
    ) -> Result<Compactor, JobError> {
        let gpu = gpu_for_lanes(self.lanes)?;
        let mut bridge_config = BridgeConfig::default();
        if self.bridge_pairs != 0 {
            bridge_config.pairs = self.bridge_pairs;
        }
        Ok(Compactor {
            gpu,
            reverse_patterns: self.reverse,
            respect_arc: self.respect_arc,
            prune_untestable: self.prune,
            fault_model: self.fault_model,
            bridge_config,
            obs,
            store,
            fsim_config: FaultSimConfig {
                backend: self.backend,
                threads: self.threads,
                drop_detected: self.drop_detected,
                early_exit: self.drop_detected,
            },
        })
    }
}

/// How a job failed — split along the protocol boundary.
#[derive(Debug)]
pub enum JobError {
    /// The request itself is malformed (unparseable input text, unknown
    /// module name). A server maps this to HTTP 400.
    BadRequest(String),
    /// Well-formed input whose compaction/verification failed. A server
    /// maps this to HTTP 422.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The result of a [`compact_job`]: the compacted PTP text plus the
/// deterministic report JSON, byte-identical to the CLI's `--json` output.
#[derive(Debug, Clone)]
pub struct CompactJobResult {
    /// Serialized compacted PTP (what the CLI writes to `--out`).
    pub compacted: String,
    /// [`CompactionReport::to_json`] verbatim.
    pub report_json: String,
    /// The structured report the JSON was rendered from, for callers
    /// (like the campaign runner) that aggregate across jobs without
    /// re-parsing their own output.
    pub report: CompactionReport,
}

/// The result of a [`compact_stl_job`]: the compacted STL text plus the
/// per-PTP report array, byte-identical to the CLI's `--json` output.
#[derive(Debug, Clone)]
pub struct StlJobResult {
    /// Serialized compacted STL (what the CLI writes to `--out`).
    pub compacted: String,
    /// [`stl_report_array`] over the per-PTP reports, verbatim.
    pub report_json: String,
}

/// The result of an [`analyze_job`] or [`lint_job`]: the report JSON and
/// whether the gate passed (a failed gate is still a completed job — the
/// report is the answer).
#[derive(Debug, Clone)]
pub struct GateJobResult {
    /// The analyze/verify report JSON (the CLI's `--json` output).
    pub report_json: String,
    /// `true` when the gate found no errors (warnings still pass).
    pub clean: bool,
}

/// Compacts one PTP given as text. See [`JobOptions`] for the knobs and
/// [`CompactJobResult`] for the byte-identity contract.
///
/// # Errors
///
/// [`JobError::BadRequest`] when `ptp_text` does not parse;
/// [`JobError::Failed`] when compaction fails.
pub fn compact_job(
    ptp_text: &str,
    opts: &JobOptions,
    store: Option<Arc<Store>>,
    obs: Option<Arc<Recorder>>,
) -> Result<CompactJobResult, JobError> {
    let ptp = ptp_from_text(ptp_text).map_err(|e| JobError::BadRequest(e.to_string()))?;
    let compactor = opts.compactor(store, obs)?;
    let mut ctx = compactor.context_for(ptp.target);
    let out = compactor
        .compact(&ptp, &mut ctx)
        .map_err(|e| JobError::Failed(e.to_string()))?;
    Ok(CompactJobResult {
        compacted: ptp_to_text(&out.compacted),
        report_json: out.report.to_json(),
        report: out.report,
    })
}

/// Compacts a whole STL given as text: PTPs group by target module and
/// compact in file order against shared dropping fault lists, with SFU
/// programs simulated in reverse order — the same flow as the CLI's
/// `compact-stl`.
///
/// # Errors
///
/// [`JobError::BadRequest`] when `stl_text` does not parse;
/// [`JobError::Failed`] when any module's compaction fails.
pub fn compact_stl_job(
    stl_text: &str,
    opts: &JobOptions,
    store: Option<Arc<Store>>,
    obs: Option<Arc<Recorder>>,
) -> Result<StlJobResult, JobError> {
    let stl = stl_from_text(stl_text).map_err(|e| JobError::BadRequest(e.to_string()))?;
    let base = opts.compactor(store, obs)?;
    let outcome = compact_stl_with(&stl, |module| Compactor {
        reverse_patterns: module == ModuleKind::Sfu,
        ..base.clone()
    })
    .map_err(|e| JobError::Failed(e.to_string()))?;
    Ok(StlJobResult {
        compacted: stl_to_text(&outcome.compacted),
        report_json: stl_report_array(&outcome.reports),
    })
}

/// Formats per-PTP reports as the CLI's `compact-stl --json` array —
/// **the** spelling both the CLI and serve emit, so the two stay
/// byte-identical by sharing this function rather than by convention.
#[must_use]
pub fn stl_report_array(reports: &[CompactionReport]) -> String {
    let body: Vec<String> = reports.iter().map(CompactionReport::to_json).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

/// Resolves a netlist name: the bundled modules first, then the lint demo
/// fixtures (a seeded combinational loop, an undriven net, and redundant
/// logic) so analysis gates can be exercised by name.
///
/// # Errors
///
/// [`JobError::BadRequest`] when the name matches neither a module nor a
/// fixture.
pub fn netlist_by_name(name: &str) -> Result<Netlist, JobError> {
    if let Some(kind) = ModuleKind::ALL.iter().find(|k| k.name() == name) {
        return Ok(kind.build());
    }
    match name {
        "comb-loop" => Ok(warpstl_netlist::fixtures::combinational_loop()),
        "undriven" => Ok(warpstl_netlist::fixtures::undriven()),
        "redundant-logic" => Ok(warpstl_netlist::fixtures::redundant_logic()),
        other => Err(JobError::BadRequest(format!(
            "unknown module `{other}` (see `warpstl modules`, or use `comb-loop` / `undriven` / `redundant-logic`)"
        ))),
    }
}

/// Statically analyzes one module by name, returning the analyze report
/// JSON — the CLI's `analyze --json` output. `lanes` is the GPU shape
/// override (`0` for the default); module netlists are shape-independent,
/// but the parameter is validated here so a campaign cell with a bad
/// shape fails identically whichever job it reaches first.
///
/// # Errors
///
/// [`JobError::BadRequest`] when the module name is unknown or `lanes`
/// is not 0, 8, 16 or 32.
pub fn analyze_job(module: &str, lanes: usize) -> Result<GateJobResult, JobError> {
    let _ = gpu_for_lanes(lanes)?;
    let netlist = netlist_by_name(module)?;
    let analysis = warpstl_analyze::analyze(&netlist);
    Ok(GateJobResult {
        report_json: analysis.report.to_json(),
        clean: analysis.is_clean(),
    })
}

/// Statically verifies one PTP given as text, returning the verifier
/// report JSON — the CLI's `lint --json` output.
///
/// # Errors
///
/// [`JobError::BadRequest`] when `ptp_text` does not parse.
pub fn lint_job(ptp_text: &str) -> Result<GateJobResult, JobError> {
    let ptp = ptp_from_text(ptp_text).map_err(|e| JobError::BadRequest(e.to_string()))?;
    let report = warpstl_verify::verify_ptp(&ptp);
    Ok(GateJobResult {
        report_json: report.to_json(),
        clean: report.is_clean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_programs::generators::{generate_imm, ImmConfig};
    use warpstl_programs::Stl;

    fn imm_text(sb_count: usize) -> String {
        ptp_to_text(&generate_imm(&ImmConfig {
            sb_count,
            ..ImmConfig::default()
        }))
    }

    #[test]
    fn compact_job_matches_direct_pipeline_byte_for_byte() {
        let text = imm_text(4);
        let job = compact_job(&text, &JobOptions::default(), None, None).unwrap();

        let ptp = ptp_from_text(&text).unwrap();
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ptp.target);
        let direct = compactor.compact(&ptp, &mut ctx).unwrap();
        assert_eq!(job.report_json, direct.report.to_json());
        assert_eq!(job.compacted, ptp_to_text(&direct.compacted));
    }

    #[test]
    fn stl_job_report_array_matches_cli_spelling() {
        let mut stl = Stl::new("lib");
        stl.push(generate_imm(&ImmConfig {
            sb_count: 4,
            ..ImmConfig::default()
        }));
        let job = compact_stl_job(&stl_to_text(&stl), &JobOptions::default(), None, None).unwrap();
        assert!(job.report_json.starts_with("[\n{"));
        assert!(job.report_json.ends_with("}\n]\n"));
        let back = stl_from_text(&job.compacted).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn malformed_inputs_are_bad_requests() {
        let opts = JobOptions::default();
        assert!(matches!(
            compact_job("not a ptp", &opts, None, None),
            Err(JobError::BadRequest(_))
        ));
        assert!(matches!(
            compact_stl_job("not an stl", &opts, None, None),
            Err(JobError::BadRequest(_))
        ));
        assert!(matches!(lint_job("garbage"), Err(JobError::BadRequest(_))));
        assert!(matches!(
            analyze_job("warp_scheduler", 0),
            Err(JobError::BadRequest(_))
        ));
    }

    #[test]
    fn invalid_lane_counts_are_bad_requests() {
        for lanes in [1, 7, 12, 64] {
            assert!(matches!(gpu_for_lanes(lanes), Err(JobError::BadRequest(_))));
            assert!(matches!(
                analyze_job("decoder_unit", lanes),
                Err(JobError::BadRequest(_))
            ));
            let opts = JobOptions {
                lanes,
                ..JobOptions::default()
            };
            assert!(matches!(
                compact_job(&imm_text(4), &opts, None, None),
                Err(JobError::BadRequest(_))
            ));
        }
        assert_eq!(gpu_for_lanes(0).unwrap().config.sp_cores, 8);
        assert_eq!(gpu_for_lanes(16).unwrap().config.sp_cores, 16);
    }

    #[test]
    fn lane_override_reshapes_the_compaction_job() {
        use warpstl_programs::generators::{generate_rand_sp, RandConfig};
        let text = ptp_to_text(&generate_rand_sp(&RandConfig {
            sb_count: 4,
            ..RandConfig::default()
        }));
        let narrow = compact_job(
            &text,
            &JobOptions {
                lanes: 8,
                ..JobOptions::default()
            },
            None,
            None,
        )
        .unwrap();
        let wide = compact_job(
            &text,
            &JobOptions {
                lanes: 32,
                ..JobOptions::default()
            },
            None,
            None,
        )
        .unwrap();
        // More lanes execute a warp in fewer passes: the traced duration
        // shrinks, and the structured report rides along on the result.
        assert!(wide.report.original_duration < narrow.report.original_duration);
        assert_eq!(narrow.report_json, narrow.report.to_json());
    }

    #[test]
    fn bridging_model_compacts_through_the_job_surface() {
        let opts = JobOptions {
            fault_model: FaultModel::Bridging,
            ..JobOptions::default()
        };
        let out = compact_job(&imm_text(6), &opts, None, None).unwrap();
        // Untestability proofs are stuck-at constructs; bridging reports
        // must not claim any.
        assert_eq!(out.report.untestable, 0);
        assert!(out.report.fc_before > 0.0, "{}", out.report.fc_before);
    }

    #[test]
    fn gate_jobs_report_cleanliness_without_erroring() {
        assert!(analyze_job("decoder_unit", 0).unwrap().clean);
        let dirty = analyze_job("comb-loop", 32).unwrap();
        assert!(!dirty.clean);
        assert!(dirty.report_json.contains("comb"));
        assert!(lint_job(&imm_text(4)).unwrap().clean);
    }
}
