//! Small-Block segmentation (the unit of removal in stage 4).

use warpstl_isa::{Instruction, Opcode};

use crate::BasicBlocks;

/// A Small Block: a load–operate–propagate run inside one basic block.
///
/// Per the paper, "each BB is divided in Small Blocks of a sequence of
/// instructions that comprises the load of test operands in the registers,
/// execute an operation, and propagate the result to an observable point."
/// Structurally, an SB is a maximal run of non-control instructions that
/// *ends with a store* (the propagation); trailing store-less runs — such
/// as address-setup preambles — and control/synchronization instructions
/// are not SBs and are never removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index (the store).
    pub end: usize,
    /// The basic block the SB belongs to.
    pub block: usize,
}

impl SmallBlock {
    /// The instruction range.
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// The SB length in instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the SB is empty (never true for segmented SBs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Segments every basic block of `program` into Small Blocks.
///
/// # Examples
///
/// ```
/// use warpstl_programs::{segment_small_blocks, BasicBlocks};
///
/// let p = warpstl_isa::asm::assemble(
///     "S2R R0, SR_TID_X;\n\
///      SHL R6, R0, 0x2;\n\
///      MOV32I R1, 0x11;\n\
///      IADD R4, R1, 0x1;\n\
///      STG [R6], R4;\n\
///      MOV32I R1, 0x22;\n\
///      XOR R4, R1, R1;\n\
///      STG [R6], R4;\n\
///      EXIT;",
/// ).unwrap();
/// let bbs = BasicBlocks::of(&p);
/// let sbs = segment_small_blocks(&p, &bbs);
/// // Two SBs; the address preamble joins the first SB's run but the final
/// // EXIT does not form one.
/// assert_eq!(sbs.len(), 2);
/// assert_eq!(sbs[0].range(), 0..5);
/// assert_eq!(sbs[1].range(), 5..8);
/// ```
#[must_use]
pub fn segment_small_blocks(program: &[Instruction], bbs: &BasicBlocks) -> Vec<SmallBlock> {
    let mut sbs = Vec::new();
    for b in bbs.iter() {
        let range = bbs.range(b);
        let mut run_start = range.start;
        for pc in range.clone() {
            let op = program[pc].opcode;
            if op.is_control_flow() || op == Opcode::Nop {
                // Control and sync instructions break the run and are never
                // part of an SB.
                run_start = pc + 1;
            } else if op.is_store() {
                sbs.push(SmallBlock {
                    start: run_start,
                    end: pc + 1,
                    block: b,
                });
                run_start = pc + 1;
            }
        }
        // A trailing store-less run is not an SB (nothing was propagated).
    }
    sbs
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_isa::asm;

    fn segment(src: &str) -> (Vec<warpstl_isa::Instruction>, Vec<SmallBlock>) {
        let p = asm::assemble(src).unwrap();
        let bbs = BasicBlocks::of(&p);
        let sbs = segment_small_blocks(&p, &bbs);
        (p, sbs)
    }

    #[test]
    fn storeless_block_has_no_sbs() {
        let (_, sbs) = segment("MOV32I R1, 1;\nIADD R2, R1, R1;\nEXIT;");
        assert!(sbs.is_empty());
    }

    #[test]
    fn each_store_ends_an_sb() {
        let (_, sbs) = segment(
            "MOV32I R1, 1;\n\
             STG [R1], R1;\n\
             MOV32I R2, 2;\n\
             MOV32I R3, 3;\n\
             STS [R2], R3;\n\
             EXIT;",
        );
        assert_eq!(sbs.len(), 2);
        assert_eq!(sbs[0].range(), 0..2);
        assert_eq!(sbs[1].range(), 2..5);
        assert_eq!(sbs[1].len(), 3);
    }

    #[test]
    fn control_instructions_break_runs() {
        let (_, sbs) = segment(
            "SSY j;\n\
             MOV32I R1, 1;\n\
             j: STG [R1], R1;\n\
             EXIT;",
        );
        // SSY ends a (empty) run; the store closes an SB spanning only the
        // instructions after SSY — and SSY creates a leader at j, so the
        // MOV and STG land in different blocks.
        assert_eq!(sbs.len(), 1);
        assert_eq!(sbs[0].range(), 2..3);
    }

    #[test]
    fn sbs_respect_block_boundaries() {
        let (p, sbs) = segment(
            "MOV32I R1, 1;\n\
             @P0 BRA skip;\n\
             MOV32I R2, 2;\n\
             STG [R2], R2;\n\
             skip: STG [R1], R1;\n\
             EXIT;",
        );
        let bbs = BasicBlocks::of(&p);
        assert_eq!(sbs.len(), 2);
        for sb in &sbs {
            let b = bbs.block_of(sb.start).unwrap();
            assert_eq!(bbs.block_of(sb.end - 1), Some(b), "SB crosses blocks");
            assert_eq!(sb.block, b);
        }
    }

    #[test]
    fn sb_in_loop_is_still_reported() {
        // Segmentation is ARC-agnostic; admissibility filtering happens in
        // the reduction stage.
        let (_, sbs) = segment(
            "top: MOV32I R1, 1;\n\
             STG [R1], R1;\n\
             BRA top;",
        );
        assert_eq!(sbs.len(), 1);
    }
}
