//! Text serialization for PTPs and STLs.
//!
//! An STL is shipped to customers as source artifacts; this module defines
//! a plain-text container holding the assembly plus the launch
//! configuration and data image, so compacted libraries can be saved,
//! diffed and reloaded:
//!
//! ```text
//! ; PTP IMM
//! ; target decoder_unit
//! ; kernel 1 32
//! ; slots 0 5 2 64 128 32        (optional: SB input-slot layout)
//! ; data 0x100 0xdeadbeef        (repeated: initial global-memory words)
//! <assembly text>
//! ; END
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use warpstl_gpu::KernelConfig;
use warpstl_isa::asm;
use warpstl_netlist::modules::ModuleKind;

use crate::{Ptp, SbSlots, Stl};

/// An error produced while parsing PTP/STL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePtpError(String);

impl ParsePtpError {
    fn new(msg: impl Into<String>) -> ParsePtpError {
        ParsePtpError(msg.into())
    }
}

impl fmt::Display for ParsePtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PTP text: {}", self.0)
    }
}

impl Error for ParsePtpError {}

/// Serializes a PTP to its text container.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_mem, MemConfig};
/// use warpstl_programs::serialize::{ptp_from_text, ptp_to_text};
///
/// let ptp = generate_mem(&MemConfig { sb_count: 4, ..MemConfig::default() });
/// let text = ptp_to_text(&ptp);
/// let back = ptp_from_text(&text)?;
/// assert_eq!(back.name, ptp.name);
/// assert_eq!(back.program, ptp.program);
/// assert_eq!(back.global_init, ptp.global_init);
/// assert_eq!(back.sb_slots, ptp.sb_slots);
/// # Ok::<(), warpstl_programs::serialize::ParsePtpError>(())
/// ```
#[must_use]
pub fn ptp_to_text(ptp: &Ptp) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; PTP {}", ptp.name);
    let _ = writeln!(s, "; target {}", ptp.target);
    let _ = writeln!(
        s,
        "; kernel {} {}",
        ptp.kernel_config.blocks, ptp.kernel_config.threads_per_block
    );
    if let Some(sl) = &ptp.sb_slots {
        let _ = writeln!(
            s,
            "; slots {} {} {} {} {} {}",
            sl.base, sl.base_reg, sl.words_per_sb, sl.sb_count, sl.stride_words, sl.threads
        );
    }
    for &(addr, value) in &ptp.global_init {
        let _ = writeln!(s, "; data {addr:#x} {value:#x}");
    }
    s.push_str(&asm::disassemble(&ptp.program));
    s.push_str("; END\n");
    s
}

/// Parses a PTP from its text container.
///
/// # Errors
///
/// Returns [`ParsePtpError`] on malformed headers or assembly.
pub fn ptp_from_text(text: &str) -> Result<Ptp, ParsePtpError> {
    let mut name = None;
    let mut target = None;
    let mut kernel = None;
    let mut slots = None;
    let mut data = Vec::new();
    let mut asm_lines = Vec::new();

    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix(';') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("PTP") => name = parts.next().map(str::to_string),
                Some("target") => {
                    let t = parts
                        .next()
                        .ok_or_else(|| ParsePtpError::new("missing target"))?;
                    target = Some(
                        ModuleKind::ALL
                            .into_iter()
                            .find(|m| m.name() == t)
                            .ok_or_else(|| ParsePtpError::new(format!("unknown module `{t}`")))?,
                    );
                }
                Some("kernel") => {
                    let b: usize = parse_num(parts.next(), "kernel blocks")?;
                    let t: usize = parse_num(parts.next(), "kernel threads")?;
                    kernel = Some(KernelConfig::new(b, t));
                }
                Some("slots") => {
                    slots = Some(SbSlots {
                        base: parse_num(parts.next(), "slots base")?,
                        base_reg: parse_num(parts.next(), "slots base_reg")?,
                        words_per_sb: parse_num(parts.next(), "slots words")?,
                        sb_count: parse_num(parts.next(), "slots count")?,
                        stride_words: parse_num(parts.next(), "slots stride")?,
                        threads: parse_num(parts.next(), "slots threads")?,
                    });
                }
                Some("data") => {
                    let addr = parse_hex(parts.next(), "data addr")?;
                    let value = parse_hex(parts.next(), "data value")? as u32;
                    data.push((addr, value));
                }
                Some("END") | None => {}
                Some(other) => {
                    return Err(ParsePtpError::new(format!("unknown directive `{other}`")))
                }
            }
        } else {
            asm_lines.push(line);
        }
    }

    let program = asm::assemble(&asm_lines.join("\n"))
        .map_err(|e| ParsePtpError::new(format!("assembly: {e}")))?;
    let mut ptp = Ptp::new(
        &name.ok_or_else(|| ParsePtpError::new("missing `; PTP <name>`"))?,
        target.ok_or_else(|| ParsePtpError::new("missing `; target`"))?,
        kernel.ok_or_else(|| ParsePtpError::new("missing `; kernel`"))?,
        program,
    );
    ptp.global_init = data;
    ptp.sb_slots = slots;
    Ok(ptp)
}

/// Serializes a whole STL (PTPs concatenated under an `; STL` header).
#[must_use]
pub fn stl_to_text(stl: &Stl) -> String {
    let mut s = format!("; STL {}\n", stl.name());
    for ptp in stl.ptps() {
        s.push_str(&ptp_to_text(ptp));
    }
    s
}

/// Parses an STL.
///
/// # Errors
///
/// Returns [`ParsePtpError`] on malformed content.
pub fn stl_from_text(text: &str) -> Result<Stl, ParsePtpError> {
    let mut lines = text.lines().peekable();
    let header = lines
        .next()
        .ok_or_else(|| ParsePtpError::new("empty STL"))?;
    let name = header
        .trim()
        .strip_prefix("; STL ")
        .ok_or_else(|| ParsePtpError::new("missing `; STL <name>` header"))?;
    let mut stl = Stl::new(name.trim());

    let mut current: Vec<&str> = Vec::new();
    for line in lines {
        current.push(line);
        if line.trim() == "; END" {
            stl.push(ptp_from_text(&current.join("\n"))?);
            current.clear();
        }
    }
    if current.iter().any(|l| !l.trim().is_empty()) {
        return Err(ParsePtpError::new("trailing content after last `; END`"));
    }
    Ok(stl)
}

fn parse_num<T: std::str::FromStr>(s: Option<&str>, what: &str) -> Result<T, ParsePtpError> {
    s.and_then(|v| v.parse().ok())
        .ok_or_else(|| ParsePtpError::new(format!("bad {what}")))
}

fn parse_hex(s: Option<&str>, what: &str) -> Result<u64, ParsePtpError> {
    let s = s.ok_or_else(|| ParsePtpError::new(format!("missing {what}")))?;
    let v = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(v, 16).map_err(|_| ParsePtpError::new(format!("bad {what} `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_cntrl, generate_imm, CntrlConfig, ImmConfig};

    #[test]
    fn ptp_round_trips_with_control_flow() {
        let ptp = generate_cntrl(&CntrlConfig {
            regions: 2,
            loops: 1,
            threads: 64,
            ..CntrlConfig::default()
        });
        let text = ptp_to_text(&ptp);
        let back = ptp_from_text(&text).unwrap();
        assert_eq!(back.program, ptp.program);
        assert_eq!(back.kernel_config, ptp.kernel_config);
        assert_eq!(back.target, ptp.target);
    }

    #[test]
    fn stl_round_trips() {
        let mut stl = Stl::new("lib");
        stl.push(generate_imm(&ImmConfig {
            sb_count: 2,
            ..ImmConfig::default()
        }));
        stl.push(generate_cntrl(&CntrlConfig {
            regions: 1,
            loops: 1,
            threads: 32,
            ..CntrlConfig::default()
        }));
        let text = stl_to_text(&stl);
        let back = stl_from_text(&text).unwrap();
        assert_eq!(back.name(), "lib");
        assert_eq!(back.len(), 2);
        assert_eq!(back.ptps()[0].program, stl.ptps()[0].program);
        assert_eq!(back.ptps()[1].program, stl.ptps()[1].program);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(ptp_from_text("IADD R1, R2, R3;").is_err()); // no headers
        assert!(ptp_from_text("; PTP x\n; target bogus\n; kernel 1 1\nEXIT;").is_err());
        assert!(ptp_from_text("; PTP x\n; target sfu\n; kernel 1 1\nFROB;").is_err());
        assert!(stl_from_text("").is_err());
        assert!(stl_from_text("not a header").is_err());
    }

    #[test]
    fn data_and_slots_survive() {
        use warpstl_gpu::KernelConfig;
        use warpstl_isa::{Instruction, Opcode};
        let mut ptp = Ptp::new(
            "d",
            warpstl_netlist::modules::ModuleKind::Sfu,
            KernelConfig::new(2, 64),
            vec![Instruction::bare(Opcode::Exit)],
        );
        ptp.global_init = vec![(0x40, 0xabcd), (0x44, 1)];
        ptp.sb_slots = Some(SbSlots {
            base: 0,
            base_reg: 5,
            words_per_sb: 2,
            sb_count: 9,
            stride_words: 32,
            threads: 64,
        });
        let back = ptp_from_text(&ptp_to_text(&ptp)).unwrap();
        assert_eq!(back.global_init, ptp.global_init);
        assert_eq!(back.sb_slots, ptp.sb_slots);
        assert_eq!(back.kernel_config.blocks, 2);
    }
}
