//! The Self-Test Library: an ordered collection of PTPs.

use std::fmt;

use warpstl_netlist::modules::ModuleKind;

use crate::Ptp;

/// A Self-Test Library: the ordered set of PTPs shipped for in-field test.
///
/// Order matters: the compaction flow fault-simulates PTPs in STL order with
/// a shared, dropping fault list per target module (the paper compacts IMM,
/// then MEM, then CNTRL against the same Decoder Unit list).
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_imm, generate_rand_sp, ImmConfig, RandConfig};
/// use warpstl_programs::Stl;
///
/// let mut stl = Stl::new("demo");
/// stl.push(generate_imm(&ImmConfig { sb_count: 4, ..ImmConfig::default() }));
/// stl.push(generate_rand_sp(&RandConfig { sb_count: 4, ..RandConfig::default() }));
/// assert_eq!(stl.len(), 2);
/// assert!(stl.total_size() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stl {
    name: String,
    ptps: Vec<Ptp>,
}

impl Stl {
    /// An empty STL named `name`.
    #[must_use]
    pub fn new(name: &str) -> Stl {
        Stl {
            name: name.to_string(),
            ptps: Vec::new(),
        }
    }

    /// The STL name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a PTP.
    pub fn push(&mut self, ptp: Ptp) {
        self.ptps.push(ptp);
    }

    /// The PTPs in order.
    #[must_use]
    pub fn ptps(&self) -> &[Ptp] {
        &self.ptps
    }

    /// The number of PTPs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ptps.len()
    }

    /// Whether the STL has no PTPs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ptps.is_empty()
    }

    /// Total size in instructions across all PTPs.
    #[must_use]
    pub fn total_size(&self) -> usize {
        self.ptps.iter().map(Ptp::size).sum()
    }

    /// The PTPs targeting `module`, in order.
    pub fn ptps_for(&self, module: ModuleKind) -> impl Iterator<Item = &Ptp> + '_ {
        self.ptps.iter().filter(move |p| p.target == module)
    }

    /// Replaces PTP `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replace(&mut self, i: usize, ptp: Ptp) {
        self.ptps[i] = ptp;
    }
}

impl fmt::Display for Stl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "STL {}: {} PTPs, {} instructions",
            self.name,
            self.len(),
            self.total_size()
        )?;
        for p in &self.ptps {
            writeln!(
                f,
                "  {} -> {} ({} instructions, {} blocks x {} threads)",
                p.name,
                p.target,
                p.size(),
                p.kernel_config.blocks,
                p.kernel_config.threads_per_block
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::KernelConfig;
    use warpstl_isa::{Instruction, Opcode};

    fn tiny(name: &str, target: ModuleKind) -> Ptp {
        Ptp::new(
            name,
            target,
            KernelConfig::new(1, 32),
            vec![Instruction::bare(Opcode::Exit)],
        )
    }

    #[test]
    fn push_and_filter() {
        let mut stl = Stl::new("s");
        stl.push(tiny("A", ModuleKind::DecoderUnit));
        stl.push(tiny("B", ModuleKind::SpCore));
        stl.push(tiny("C", ModuleKind::DecoderUnit));
        assert_eq!(stl.ptps_for(ModuleKind::DecoderUnit).count(), 2);
        assert_eq!(stl.ptps_for(ModuleKind::Sfu).count(), 0);
        assert_eq!(stl.total_size(), 3);
        assert!(!stl.is_empty());
    }

    #[test]
    fn replace_swaps_in_place() {
        let mut stl = Stl::new("s");
        stl.push(tiny("A", ModuleKind::DecoderUnit));
        stl.replace(0, tiny("A2", ModuleKind::DecoderUnit));
        assert_eq!(stl.ptps()[0].name, "A2");
    }

    #[test]
    fn display_lists_ptps() {
        let mut stl = Stl::new("s");
        stl.push(tiny("IMM", ModuleKind::DecoderUnit));
        let text = stl.to_string();
        assert!(text.contains("IMM -> decoder_unit"));
    }
}
