#![warn(missing_docs)]
//! # warpstl-programs
//!
//! Parallel Test Programs (PTPs), Self-Test Libraries (STLs), the structural
//! analyses the compaction method needs — basic blocks, control-flow graph,
//! Admissible Regions for Compaction (ARCs), Small Blocks (SBs) — and the
//! six PTP generators matching the paper's STL:
//!
//! | PTP | Target module | Style | Kernel config |
//! |---|---|---|---|
//! | IMM | Decoder Unit | pseudorandom, immediate + register formats | 1 block × 32 threads |
//! | MEM | Decoder Unit | pseudorandom memory accesses | 1 block × 32 threads |
//! | CNTRL | Decoder Unit | control-flow conditions | 1 block × 1024 threads |
//! | TPGEN | SP cores | ATPG patterns, parsed to instructions | 1 block × 32 threads |
//! | RAND | SP cores | pseudorandom SP operations | 1 block × 32 threads |
//! | SFU_IMM | SFUs | ATPG patterns, parsed to instructions | 1 block × 32 threads |
//!
//! # Examples
//!
//! ```
//! use warpstl_programs::generators::{ImmConfig, generate_imm};
//! use warpstl_programs::{ArcAnalysis, BasicBlocks};
//!
//! let ptp = generate_imm(&ImmConfig { sb_count: 20, ..ImmConfig::default() });
//! let bbs = BasicBlocks::of(&ptp.program);
//! let arc = ArcAnalysis::of(&ptp.program, &bbs);
//! // Straight-line pseudorandom PTPs are fully admissible.
//! assert!(arc.arc_fraction() > 0.99);
//! ```

mod arc;
mod cfg;
pub mod generators;
mod ptp;
pub mod serialize;
mod smallblock;
mod stl;

pub use arc::ArcAnalysis;
pub use cfg::{BasicBlocks, ControlFlowGraph};
pub use ptp::{Ptp, SbSlots};
pub use smallblock::{segment_small_blocks, SmallBlock};
pub use stl::Stl;
