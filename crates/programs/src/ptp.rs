//! The Parallel Test Program type.

use warpstl_gpu::{Kernel, KernelConfig};
use warpstl_isa::Instruction;
use warpstl_netlist::modules::ModuleKind;

/// Layout metadata for per-SB input data in global memory: SB `k` of each
/// thread reads its operands from
/// `base + thread * stride_words * 4 + k * words_per_sb * 4`.
///
/// The compaction flow uses this to *relocate* the surviving SBs' input
/// words when SBs are removed (the paper: "removing an SB may also imply
/// the additional removal and relocation of associated input data from the
/// main memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbSlots {
    /// Byte address of the input region.
    pub base: u64,
    /// The register holding each thread's slot base (the generators use
    /// `R5`); loads addressing SB slots use `[base_reg + offset]`.
    pub base_reg: u8,
    /// Words each SB consumes per thread.
    pub words_per_sb: usize,
    /// Number of SBs the layout was built for.
    pub sb_count: usize,
    /// Words between consecutive threads' slot arrays (a power of two so
    /// the prologue computes it with a shift).
    pub stride_words: usize,
    /// Threads sharing the region.
    pub threads: usize,
}

impl SbSlots {
    /// The byte address of word `w` of SB `sb` for `thread`.
    #[must_use]
    pub fn addr(&self, thread: usize, sb: usize, w: usize) -> u64 {
        self.base + (thread * self.stride_words + sb * self.words_per_sb + w) as u64 * 4
    }

    /// Bytes each thread's slot array occupies.
    #[must_use]
    pub fn stride_per_thread(&self) -> u64 {
        self.stride_words as u64 * 4
    }

    /// Decomposes a byte address into `(thread, sb, word)`, or `None` when
    /// it lies outside the region.
    #[must_use]
    pub fn locate(&self, addr: u64) -> Option<(usize, usize, usize)> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let word = ((addr - self.base) / 4) as usize;
        let thread = word / self.stride_words;
        if thread >= self.threads {
            return None;
        }
        let rem = word % self.stride_words;
        let sb = rem / self.words_per_sb;
        if sb >= self.sb_count {
            return None;
        }
        Some((thread, sb, rem % self.words_per_sb))
    }
}

/// A Parallel Test Program: a kernel-shaped test targeting one GPU module.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_rand_sp, RandConfig};
///
/// let ptp = generate_rand_sp(&RandConfig { sb_count: 10, ..RandConfig::default() });
/// assert_eq!(ptp.size(), ptp.program.len());
/// let kernel = ptp.to_kernel().unwrap();
/// assert_eq!(kernel.config.threads_per_block, 32);
/// ```
#[derive(Debug, Clone)]
pub struct Ptp {
    /// The PTP name (e.g. `"IMM"`).
    pub name: String,
    /// The module whose faults the PTP targets.
    pub target: ModuleKind,
    /// Launch configuration.
    pub kernel_config: KernelConfig,
    /// The instruction sequence.
    pub program: Vec<Instruction>,
    /// Initial global-memory words, as `(byte_addr, value)` writes.
    pub global_init: Vec<(u64, u32)>,
    /// Per-SB input layout, when the PTP reads SB operands from memory.
    pub sb_slots: Option<SbSlots>,
}

impl Ptp {
    /// A PTP over `program` with no initial data.
    #[must_use]
    pub fn new(
        name: &str,
        target: ModuleKind,
        kernel_config: KernelConfig,
        program: Vec<Instruction>,
    ) -> Ptp {
        Ptp {
            name: name.to_string(),
            target,
            kernel_config,
            program,
            global_init: Vec::new(),
            sb_slots: None,
        }
    }

    /// The PTP size in instructions (the paper's *Size* column).
    #[must_use]
    pub fn size(&self) -> usize {
        self.program.len()
    }

    /// Builds the runnable kernel (program + launch config + data image).
    ///
    /// # Errors
    ///
    /// Propagates [`warpstl_gpu::SimError`] if an initial write falls
    /// outside global memory.
    pub fn to_kernel(&self) -> Result<Kernel, warpstl_gpu::SimError> {
        let mut kernel = Kernel::new(&self.name, self.program.clone(), self.kernel_config);
        for &(addr, value) in &self.global_init {
            kernel.data.store_global_word(addr, value)?;
        }
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_isa::Opcode;

    #[test]
    fn sb_slots_addressing() {
        let s = SbSlots {
            base: 0x1000,
            base_reg: 5,
            words_per_sb: 2,
            sb_count: 10,
            stride_words: 32, // padded past 20
            threads: 32,
        };
        assert_eq!(s.addr(0, 0, 0), 0x1000);
        assert_eq!(s.addr(0, 0, 1), 0x1004);
        assert_eq!(s.addr(0, 1, 0), 0x1008);
        assert_eq!(s.addr(1, 0, 0), 0x1000 + 128);
        assert_eq!(s.stride_per_thread(), 128);
    }

    #[test]
    fn sb_slots_locate_inverts_addr() {
        let s = SbSlots {
            base: 0x100,
            base_reg: 5,
            words_per_sb: 2,
            sb_count: 6,
            stride_words: 16,
            threads: 4,
        };
        for t in 0..4 {
            for k in 0..6 {
                for w in 0..2 {
                    assert_eq!(s.locate(s.addr(t, k, w)), Some((t, k, w)));
                }
            }
        }
        // Padding words between sb_count*words_per_sb and the stride.
        assert_eq!(s.locate(s.base + 13 * 4), None);
        assert_eq!(s.locate(s.base + 4 * 16 * 4), None); // beyond threads
        assert_eq!(s.locate(s.base - 4), None);
        assert_eq!(s.locate(s.base + 2), None);
    }

    #[test]
    fn kernel_includes_data() {
        let mut ptp = Ptp::new(
            "t",
            ModuleKind::DecoderUnit,
            KernelConfig::new(1, 32),
            vec![Instruction::bare(Opcode::Exit)],
        );
        ptp.global_init.push((0x40, 77));
        let k = ptp.to_kernel().unwrap();
        assert_eq!(k.data.global().load_word(0x40).unwrap(), 77);
    }

    #[test]
    fn out_of_range_data_errors() {
        let mut ptp = Ptp::new(
            "t",
            ModuleKind::DecoderUnit,
            KernelConfig::new(1, 32),
            vec![Instruction::bare(Opcode::Exit)],
        );
        ptp.global_init.push((1 << 40, 1));
        assert!(ptp.to_kernel().is_err());
    }
}
