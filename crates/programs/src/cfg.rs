//! Basic blocks and the control-flow graph.

use std::collections::BTreeSet;

use warpstl_isa::{Instruction, Opcode};

/// The basic-block partition of a program: maximal straight-line runs with a
/// single entry (no in-jumps) and a single exit (no out-jumps except at the
/// end) — the paper's BB definition, with `SSY`/`SYNC` join points treated
/// as leaders because the divergence hardware transfers control there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlocks {
    /// Block boundaries: block `i` spans `starts[i]..starts[i + 1]`.
    starts: Vec<usize>,
    len: usize,
}

impl BasicBlocks {
    /// Partitions `program` into basic blocks.
    #[must_use]
    pub fn of(program: &[Instruction]) -> BasicBlocks {
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        if !program.is_empty() {
            leaders.insert(0);
        }
        for (pc, instr) in program.iter().enumerate() {
            if let Some(t) = instr.target() {
                if t < program.len() {
                    leaders.insert(t);
                }
            }
            // Control transfers end a block: the next instruction leads.
            if matches!(
                instr.opcode,
                Opcode::Bra | Opcode::Cal | Opcode::Ret | Opcode::Exit | Opcode::Sync
            ) && pc + 1 < program.len()
            {
                leaders.insert(pc + 1);
            }
        }
        BasicBlocks {
            starts: leaders.into_iter().collect(),
            len: program.len(),
        }
    }

    /// The number of blocks.
    #[must_use]
    pub fn count(&self) -> usize {
        self.starts.len()
    }

    /// The instruction range of block `i`.
    #[must_use]
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        let end = self.starts.get(i + 1).copied().unwrap_or(self.len);
        self.starts[i]..end
    }

    /// The block containing instruction `pc`, or `None` when `pc` lies
    /// outside the program (in particular, on an empty program, where a
    /// naive `binary_search` lower bound would underflow).
    #[must_use]
    pub fn block_of(&self, pc: usize) -> Option<usize> {
        if pc >= self.len {
            return None;
        }
        match self.starts.binary_search(&pc) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// Iterates block indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        0..self.count()
    }
}

/// The control-flow graph over basic blocks, with cycle (loop) detection.
#[derive(Debug, Clone)]
pub struct ControlFlowGraph {
    successors: Vec<Vec<usize>>,
    in_cycle: Vec<bool>,
}

impl ControlFlowGraph {
    /// Builds the CFG of `program` over its `bbs` partition.
    ///
    /// Edges: fall-through for non-terminating blocks, branch targets for
    /// `BRA` (plus fall-through when guarded), call targets *and*
    /// fall-through for `CAL` (the return resumes there), and none after
    /// `EXIT`. `SYNC` falls through (the divergence stack's alternate paths
    /// are already edges of the branch that pushed them).
    #[must_use]
    pub fn of(program: &[Instruction], bbs: &BasicBlocks) -> ControlFlowGraph {
        let n = bbs.count();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, succs) in successors.iter_mut().enumerate() {
            let range = bbs.range(b);
            let last_pc = range.end - 1;
            let last = &program[last_pc];
            let push = |succs: &mut Vec<usize>, pc: usize| {
                if let Some(t) = bbs.block_of(pc) {
                    if !succs.contains(&t) {
                        succs.push(t);
                    }
                }
            };
            match last.opcode {
                Opcode::Exit | Opcode::Ret => {}
                Opcode::Bra => {
                    if let Some(t) = last.target() {
                        push(succs, t);
                    }
                    if !last.guard.is_always_true() {
                        push(succs, last_pc + 1);
                    }
                }
                Opcode::Cal => {
                    if let Some(t) = last.target() {
                        push(succs, t);
                    }
                    push(succs, last_pc + 1);
                }
                _ => push(succs, last_pc + 1),
            }
        }
        let in_cycle = find_cycles(&successors);
        ControlFlowGraph {
            successors,
            in_cycle,
        }
    }

    /// The successors of block `b`.
    #[must_use]
    pub fn successors(&self, b: usize) -> &[usize] {
        &self.successors[b]
    }

    /// Whether block `b` participates in a CFG cycle (a loop) — the paper's
    /// criterion for exclusion from the ARC.
    #[must_use]
    pub fn in_cycle(&self, b: usize) -> bool {
        self.in_cycle[b]
    }
}

/// Marks nodes in non-trivial strongly connected components (or with
/// self-loops) using Tarjan's algorithm, iteratively.
fn find_cycles(successors: &[Vec<usize>]) -> Vec<bool> {
    let n = successors.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut in_cycle = vec![false; n];
    let mut counter = 0usize;

    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        child: usize,
    }

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame {
            node: root,
            child: 0,
        }];
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(top) = frames.last().copied() {
            let v = top.node;
            if top.child < successors[v].len() {
                let w = successors[v][top.child];
                frames.last_mut().expect("frame").child += 1;
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame { node: w, child: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    low[parent.node] = low[parent.node].min(low[v]);
                }
                if low[v] == index[v] {
                    // Root of an SCC: pop it.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC member");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || successors[v].contains(&v);
                    if cyclic {
                        for w in comp {
                            in_cycle[w] = true;
                        }
                    }
                }
            }
        }
    }
    in_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_isa::asm;

    #[test]
    fn straight_line_is_one_block() {
        let p = asm::assemble("NOP;\nIADD R0, R0, 0x1;\nEXIT;").unwrap();
        let bbs = BasicBlocks::of(&p);
        assert_eq!(bbs.count(), 1);
        assert_eq!(bbs.range(0), 0..3);
        let cfg = ControlFlowGraph::of(&p, &bbs);
        assert!(!cfg.in_cycle(0));
        assert!(cfg.successors(0).is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        let p = asm::assemble(
            "ISETP.LT P0, R0, R1;\n\
             @P0 BRA skip;\n\
             IADD R0, R0, 0x1;\n\
             skip: EXIT;",
        )
        .unwrap();
        let bbs = BasicBlocks::of(&p);
        // Blocks: [0..2), [2..3), [3..4).
        assert_eq!(bbs.count(), 3);
        assert_eq!(bbs.block_of(1), Some(0));
        assert_eq!(bbs.block_of(2), Some(1));
        let cfg = ControlFlowGraph::of(&p, &bbs);
        assert_eq!(cfg.successors(0), &[2, 1]);
        assert_eq!(cfg.successors(1), &[2]);
        assert!((0..3).all(|b| !cfg.in_cycle(b)));
    }

    #[test]
    fn loop_is_detected() {
        let p = asm::assemble(
            "MOV32I R1, 0;\n\
             top: IADD R1, R1, 0x1;\n\
             ISETP.LT P0, R1, 0x8;\n\
             @P0 BRA top;\n\
             EXIT;",
        )
        .unwrap();
        let bbs = BasicBlocks::of(&p);
        let cfg = ControlFlowGraph::of(&p, &bbs);
        let loop_block = bbs.block_of(1).unwrap();
        assert!(cfg.in_cycle(loop_block));
        assert!(!cfg.in_cycle(bbs.block_of(0).unwrap()));
        assert!(!cfg.in_cycle(bbs.block_of(4).unwrap()));
    }

    #[test]
    fn self_loop_detected() {
        let p = asm::assemble("top: BRA top;").unwrap();
        let bbs = BasicBlocks::of(&p);
        let cfg = ControlFlowGraph::of(&p, &bbs);
        assert!(cfg.in_cycle(0));
    }

    #[test]
    fn sync_and_ssy_create_join_leaders() {
        let p = asm::assemble(
            "SSY join;\n\
             @P0 BRA else;\n\
             MOV32I R1, 1;\n\
             BRA join;\n\
             else: MOV32I R1, 2;\n\
             join: SYNC;\n\
             EXIT;",
        )
        .unwrap();
        let bbs = BasicBlocks::of(&p);
        // join (pc 5) is a leader; else (pc 4) is a leader.
        assert_eq!(bbs.block_of(5), bbs.block_of(5));
        assert_ne!(bbs.block_of(4), bbs.block_of(3));
        assert!(bbs.block_of(4).is_some());
        let cfg = ControlFlowGraph::of(&p, &bbs);
        assert!((0..bbs.count()).all(|b| !cfg.in_cycle(b)));
    }

    #[test]
    fn block_of_empty_program_is_none() {
        let bbs = BasicBlocks::of(&[]);
        assert_eq!(bbs.count(), 0);
        assert_eq!(bbs.block_of(0), None);
        assert_eq!(bbs.block_of(17), None);
    }

    #[test]
    fn block_of_out_of_range_is_none() {
        let p = asm::assemble("NOP;\nEXIT;").unwrap();
        let bbs = BasicBlocks::of(&p);
        assert_eq!(bbs.block_of(1), Some(0));
        assert_eq!(bbs.block_of(2), None);
    }

    #[test]
    fn call_has_two_successors() {
        let p = asm::assemble(
            "CAL sub;\n\
             EXIT;\n\
             sub: NOP;\n\
             RET;",
        )
        .unwrap();
        let bbs = BasicBlocks::of(&p);
        let cfg = ControlFlowGraph::of(&p, &bbs);
        assert_eq!(cfg.successors(0).len(), 2);
    }
}
