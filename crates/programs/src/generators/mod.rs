//! The six PTP generators of the paper's STL.
//!
//! All generators are deterministic given their seed, use the same register
//! conventions, and emit the paper's Small-Block structure (load operands →
//! operate → propagate to an observable point) inside fully admissible
//! straight-line regions — except CNTRL, which deliberately contains
//! divergence regions and parametric loops.
//!
//! Register conventions:
//!
//! | register | role |
//! |---|---|
//! | `R0` | thread id |
//! | `R1`–`R3` | test operands |
//! | `R4` | test result |
//! | `R5` | per-thread input-slot base (memory-fed PTPs) |
//! | `R6` | per-thread output address |
//! | `R7` | `tid * 4` scratch |
//! | `R8` | loop counter (CNTRL) |

mod cntrl;
mod fpu;
mod imm;
mod mem;
mod rand_sp;
mod sfu_imm;
mod tpgen;

pub use cntrl::{generate_cntrl, CntrlConfig};
pub use fpu::{generate_fpu, FpuConfig};
pub use imm::{generate_imm, ImmConfig};
pub use mem::{generate_mem, MemConfig};
pub use rand_sp::{generate_rand_sp, RandConfig};
pub use sfu_imm::{generate_sfu_imm, generate_sfu_imm_with_stats, SfuImmConfig};
pub use tpgen::{generate_tpgen, generate_tpgen_with_stats, TpgenConfig};

use warpstl_isa::{Instruction, Opcode, Reg, SpecialReg};

/// Byte address where per-SB input slots start.
pub const INPUT_BASE: u64 = 0;
/// Byte address of the per-thread output words.
pub const OUT_BASE: u64 = 0x8_0000;

pub(crate) const R_TID: u8 = 0;
pub(crate) const R_A: u8 = 1;
pub(crate) const R_B: u8 = 2;
pub(crate) const R_C: u8 = 3;
pub(crate) const R_RES: u8 = 4;
pub(crate) const R_SLOT: u8 = 5;
pub(crate) const R_OUT: u8 = 6;
pub(crate) const R_T4: u8 = 7;
pub(crate) const R_LOOP: u8 = 8;

pub(crate) fn reg(r: u8) -> Reg {
    Reg::new(r)
}

/// `MOV32I Rd, value`.
pub(crate) fn mov32i(rd: u8, value: u32) -> Instruction {
    Instruction::build(Opcode::Mov32i)
        .dst(reg(rd))
        .src(value as i32)
        .finish()
        .expect("valid MOV32I")
}

/// `STG [R_OUT], Rs` — the standard result propagation.
pub(crate) fn store_result(rs: u8) -> Instruction {
    Instruction::build(Opcode::Stg)
        .mem(reg(R_OUT), 0)
        .src(reg(rs))
        .finish()
        .expect("valid STG")
}

/// The common prologue: `R0 = tid`, `R7 = tid * 4`, `R6 = OUT_BASE + R7`,
/// and optionally `R5 = INPUT_BASE + tid << slot_shift`.
pub(crate) fn prologue(slot_shift: Option<u32>) -> Vec<Instruction> {
    let mut p = vec![
        Instruction::build(Opcode::S2r)
            .dst(reg(R_TID))
            .special(SpecialReg::TidX)
            .finish()
            .expect("S2R"),
        Instruction::build(Opcode::Shl)
            .dst(reg(R_T4))
            .src(reg(R_TID))
            .src(2)
            .finish()
            .expect("SHL"),
        mov32i(R_OUT, OUT_BASE as u32),
        Instruction::build(Opcode::Iadd)
            .dst(reg(R_OUT))
            .src(reg(R_OUT))
            .src(reg(R_T4))
            .finish()
            .expect("IADD"),
    ];
    if let Some(shift) = slot_shift {
        p.push(
            Instruction::build(Opcode::Shl)
                .dst(reg(R_SLOT))
                .src(reg(R_TID))
                .src(shift as i32)
                .finish()
                .expect("SHL"),
        );
        if INPUT_BASE != 0 {
            p.push(
                Instruction::build(Opcode::Iadd32i)
                    .dst(reg(R_SLOT))
                    .src(reg(R_SLOT))
                    .src(INPUT_BASE as i32)
                    .finish()
                    .expect("IADD32I"),
            );
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{segment_small_blocks, ArcAnalysis, BasicBlocks};
    use warpstl_gpu::{Gpu, RunOptions};

    /// Shared sanity harness: a generated PTP must assemble, run, and have
    /// the declared structure.
    fn check_runs(ptp: &crate::Ptp) -> warpstl_gpu::RunResult {
        let kernel = ptp.to_kernel().expect("kernel");
        Gpu::default()
            .run(&kernel, &RunOptions::capture_all())
            .unwrap_or_else(|e| panic!("{}: {e}", ptp.name))
    }

    #[test]
    fn all_generators_produce_runnable_ptps() {
        let ptps = vec![
            generate_imm(&ImmConfig {
                sb_count: 6,
                ..ImmConfig::default()
            }),
            generate_mem(&MemConfig {
                sb_count: 6,
                ..MemConfig::default()
            }),
            generate_cntrl(&CntrlConfig {
                regions: 2,
                loops: 1,
                threads: 64,
                ..CntrlConfig::default()
            }),
            generate_rand_sp(&RandConfig {
                sb_count: 6,
                ..RandConfig::default()
            }),
            generate_tpgen(&TpgenConfig {
                max_patterns: 5,
                ..TpgenConfig::default()
            }),
            generate_sfu_imm(&SfuImmConfig {
                max_patterns: 5,
                ..SfuImmConfig::default()
            }),
        ];
        for ptp in &ptps {
            let r = check_runs(ptp);
            assert!(r.cycles > 0, "{}", ptp.name);
            let bbs = BasicBlocks::of(&ptp.program);
            let sbs = segment_small_blocks(&ptp.program, &bbs);
            assert!(!sbs.is_empty(), "{} has no SBs", ptp.name);
            let arc = ArcAnalysis::of(&ptp.program, &bbs);
            assert!(arc.arc_fraction() > 0.5, "{}", ptp.name);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = generate_imm(&ImmConfig {
            sb_count: 4,
            ..ImmConfig::default()
        });
        let b = generate_imm(&ImmConfig {
            sb_count: 4,
            ..ImmConfig::default()
        });
        assert_eq!(a.program, b.program);
        let c = generate_imm(&ImmConfig {
            sb_count: 4,
            seed: 1234,
            ..ImmConfig::default()
        });
        assert_ne!(a.program, c.program);
    }

    #[test]
    fn prologue_shapes() {
        assert_eq!(prologue(None).len(), 4);
        assert_eq!(prologue(Some(5)).len(), 5);
    }
}
