//! The TPGEN test program: ATPG patterns for the SP core, parsed into
//! instructions.

use warpstl_atpg::convert::{convert_sp_pattern, ConversionStats};
use warpstl_atpg::{generate_patterns, AtpgConfig, AtpgDropMode};
use warpstl_gpu::KernelConfig;
use warpstl_isa::{Instruction, Opcode};
use warpstl_netlist::modules::ModuleKind;

use super::{prologue, store_result, R_RES};
use crate::Ptp;

/// Configuration of the TPGEN generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpgenConfig {
    /// Cap on generated ATPG patterns (0 = run the full fault list).
    pub max_patterns: usize,
    /// PODEM backtrack limit.
    pub backtrack_limit: usize,
    /// Seed for ATPG don't-care filling.
    pub seed: u64,
    /// Threads per block.
    pub threads: usize,
}

impl Default for TpgenConfig {
    fn default() -> Self {
        TpgenConfig {
            max_patterns: 60,
            backtrack_limit: 60,
            seed: 0x9999_aaaa,
            threads: 32,
        }
    }
}

/// Generates the TPGEN PTP, returning it with the conversion statistics
/// (the paper: "the test patterns are converted partially").
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_tpgen_with_stats, TpgenConfig};
///
/// let (ptp, stats) = generate_tpgen_with_stats(&TpgenConfig {
///     max_patterns: 10,
///     ..TpgenConfig::default()
/// });
/// assert!(stats.converted > 0);
/// assert!(ptp.size() > stats.converted); // loads + op + store per pattern
/// ```
#[must_use]
pub fn generate_tpgen_with_stats(config: &TpgenConfig) -> (Ptp, ConversionStats) {
    let netlist = ModuleKind::SpCore.build();
    let atpg = generate_patterns(
        &netlist,
        &AtpgConfig {
            backtrack_limit: config.backtrack_limit,
            seed: config.seed,
            max_patterns: config.max_patterns,
            // One pattern per targeted fault, as commercial per-fault ATPG
            // flows produce: the set carries the incidental redundancy the
            // paper's compaction method exploits (75.81 % of TPGEN and
            // 41.20 % of SFU_IMM removed).
            drop_mode: AtpgDropMode::TargetOnly,
        },
    );

    let mut program = prologue(None);
    let mut stats = ConversionStats::default();
    for (pattern, care) in atpg.patterns.iter().zip(&atpg.assignments) {
        match convert_sp_pattern(pattern, care) {
            Some(snippet) => {
                program.extend(snippet);
                program.push(store_result(R_RES));
                stats.converted += 1;
            }
            None => stats.dropped += 1,
        }
    }
    program.push(Instruction::bare(Opcode::Exit));

    let ptp = Ptp::new(
        "TPGEN",
        ModuleKind::SpCore,
        KernelConfig::new(1, config.threads),
        program,
    );
    (ptp, stats)
}

/// Generates the TPGEN PTP.
#[must_use]
pub fn generate_tpgen(config: &TpgenConfig) -> Ptp {
    generate_tpgen_with_stats(config).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::{Gpu, RunOptions};

    #[test]
    fn conversion_is_partial_but_substantial() {
        let (_, stats) = generate_tpgen_with_stats(&TpgenConfig {
            max_patterns: 40,
            ..TpgenConfig::default()
        });
        assert!(stats.converted >= 10, "converted {}", stats.converted);
        // Partial conversion, as in the paper: some patterns have no
        // instruction equivalent.
        assert!(stats.rate() < 1.0, "rate {}", stats.rate());
        assert!(stats.rate() > 0.25, "rate {}", stats.rate());
    }

    #[test]
    fn runs_and_feeds_sp_cores() {
        let ptp = generate_tpgen(&TpgenConfig {
            max_patterns: 10,
            ..TpgenConfig::default()
        });
        let kernel = ptp.to_kernel().unwrap();
        let opts = RunOptions {
            capture_sp: true,
            ..RunOptions::default()
        };
        let r = Gpu::default().run(&kernel, &opts).unwrap();
        assert!(!r.patterns.sp[0].is_empty());
    }

    #[test]
    fn deterministic() {
        let cfg = TpgenConfig {
            max_patterns: 8,
            ..TpgenConfig::default()
        };
        assert_eq!(generate_tpgen(&cfg).program, generate_tpgen(&cfg).program);
    }
}
