//! The FPU test program (extension): pseudorandom FP32 operations
//! targeting the FP32 units paired with the SP cores.
//!
//! The paper's evaluated STL covers the DU, the SP cores and the SFUs; the
//! FP32 units are the remaining functional units of the FlexGripPlus SM.
//! This generator follows the RAND recipe — self-contained
//! load–operate–store Small Blocks with per-thread operand variation — so
//! the same compaction flow applies unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warpstl_gpu::KernelConfig;
use warpstl_isa::{CmpOp, Instruction, Opcode};
use warpstl_netlist::modules::ModuleKind;

use super::{mov32i, prologue, reg, store_result, R_A, R_B, R_C, R_RES};
use crate::Ptp;

/// Configuration of the FPU generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpuConfig {
    /// Number of Small Blocks.
    pub sb_count: usize,
    /// Pseudorandom seed.
    pub seed: u64,
    /// Threads per block.
    pub threads: usize,
}

impl Default for FpuConfig {
    fn default() -> Self {
        FpuConfig {
            sb_count: 64,
            seed: 0xeeee_ffff,
            threads: 32,
        }
    }
}

/// FP32-unit operations the body draws from.
const FP_OPS: [Opcode; 6] = [
    Opcode::Fadd,
    Opcode::Fmul,
    Opcode::Ffma,
    Opcode::Fmnmx,
    Opcode::Fadd32i,
    Opcode::Fmul32i,
];

/// Generates the FPU PTP.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_fpu, FpuConfig};
/// use warpstl_netlist::modules::ModuleKind;
///
/// let ptp = generate_fpu(&FpuConfig { sb_count: 8, ..FpuConfig::default() });
/// assert_eq!(ptp.target, ModuleKind::Fp32);
/// ```
#[must_use]
pub fn generate_fpu(config: &FpuConfig) -> Ptp {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut program = prologue(None);

    for _ in 0..config.sb_count {
        // Load phase: random IEEE-754 bit patterns (covering the full
        // encoding space exercises the unpack/align logic hardest),
        // per-thread varied through the tid mix.
        program.push(mov32i(R_A, rng.gen()));
        program.push(mov32i(R_B, rng.gen()));
        program.push(mov32i(R_C, rng.gen()));
        program.push(mov32i(R_RES, rng.gen()));
        program.push(
            Instruction::build(Opcode::Xor)
                .dst(reg(R_A))
                .src(reg(R_A))
                .src(reg(super::R_TID))
                .finish()
                .expect("lane mix"),
        );

        for _ in 0..rng.gen_range(8..=11) {
            let op = FP_OPS[rng.gen_range(0..FP_OPS.len())];
            let srcs = [R_A, R_B, R_C, R_RES];
            let mut b = Instruction::build(op)
                .dst(reg(srcs[rng.gen_range(0..4)]))
                .src(reg(srcs[rng.gen_range(0..4)]));
            b = match op {
                Opcode::Fadd32i | Opcode::Fmul32i => b.src(rng.gen::<i32>()),
                Opcode::Ffma => b
                    .src(reg(srcs[rng.gen_range(0..4)]))
                    .src(reg(srcs[rng.gen_range(0..4)])),
                Opcode::Fmnmx => {
                    let cmp = if rng.gen() { CmpOp::Lt } else { CmpOp::Gt };
                    b.cmp(cmp).src(reg(srcs[rng.gen_range(0..4)]))
                }
                _ => b.src(reg(srcs[rng.gen_range(0..4)])),
            };
            program.push(b.finish().expect("FP op"));
        }
        program.push(
            Instruction::build(Opcode::Xor)
                .dst(reg(R_RES))
                .src(reg(R_RES))
                .src(reg(R_A))
                .finish()
                .expect("fold"),
        );
        program.push(store_result(R_RES));
    }
    program.push(Instruction::bare(Opcode::Exit));

    Ptp::new(
        "FPU",
        ModuleKind::Fp32,
        KernelConfig::new(1, config.threads),
        program,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::{Gpu, RunOptions};

    #[test]
    fn all_fp32_units_receive_patterns() {
        let ptp = generate_fpu(&FpuConfig {
            sb_count: 4,
            ..FpuConfig::default()
        });
        let kernel = ptp.to_kernel().unwrap();
        let opts = RunOptions {
            capture_fp32: true,
            ..RunOptions::default()
        };
        let r = Gpu::default().run(&kernel, &opts).unwrap();
        for (i, s) in r.patterns.fp32.iter().enumerate() {
            assert!(!s.is_empty(), "FP32 unit {i} received no patterns");
        }
    }

    #[test]
    fn ffma_captures_two_patterns() {
        let src = "MOV32I R1, 0x3f800000;\n\
                   FFMA R2, R1, R1, R1;\n\
                   EXIT;";
        let program = warpstl_isa::asm::assemble(src).unwrap();
        let kernel = warpstl_gpu::Kernel::new("f", program, KernelConfig::new(1, 8));
        let opts = RunOptions {
            capture_fp32: true,
            ..RunOptions::default()
        };
        let r = Gpu::default().run(&kernel, &opts).unwrap();
        // One FFMA over 8 threads on 8 units: 1 thread per unit, 2 patterns
        // (multiply + add) each.
        assert_eq!(r.patterns.fp32[0].len(), 2);
    }

    #[test]
    fn deterministic() {
        let cfg = FpuConfig {
            sb_count: 5,
            ..FpuConfig::default()
        };
        assert_eq!(generate_fpu(&cfg).program, generate_fpu(&cfg).program);
    }
}
