//! The RAND test program: pseudorandom SP-core operations designed to test
//! all SP cores of the SM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warpstl_gpu::KernelConfig;
use warpstl_isa::{CmpOp, Instruction, Opcode};
use warpstl_netlist::modules::ModuleKind;

use super::{mov32i, prologue, reg, store_result, R_A, R_B, R_C, R_RES};
use crate::Ptp;

/// Configuration of the RAND generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandConfig {
    /// Number of Small Blocks.
    pub sb_count: usize,
    /// Pseudorandom seed.
    pub seed: u64,
    /// Threads per block (32: one full warp spanning all SP passes).
    pub threads: usize,
}

impl Default for RandConfig {
    fn default() -> Self {
        RandConfig {
            sb_count: 64,
            seed: 0x7777_8888,
            threads: 32,
        }
    }
}

/// Register-format SP operations the body draws from.
const SP_OPS: [Opcode; 12] = [
    Opcode::Iadd,
    Opcode::Isub,
    Opcode::Imul,
    Opcode::Imad,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Not,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Imnmx,
    Opcode::Iabs,
];

/// Generates the RAND PTP.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_rand_sp, RandConfig};
/// use warpstl_netlist::modules::ModuleKind;
///
/// let ptp = generate_rand_sp(&RandConfig { sb_count: 8, ..RandConfig::default() });
/// assert_eq!(ptp.target, ModuleKind::SpCore);
/// ```
#[must_use]
pub fn generate_rand_sp(config: &RandConfig) -> Ptp {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut program = prologue(None);

    for _ in 0..config.sb_count {
        // Load phase: per-thread-varied operands (XOR with the tid register
        // keeps lanes distinct so all SP cores see different patterns).
        // Every register the body can read is defined here, keeping SBs
        // free of cross-SB data dependences.
        program.push(mov32i(R_A, rng.gen()));
        program.push(mov32i(R_B, rng.gen()));
        program.push(mov32i(R_C, rng.gen()));
        program.push(mov32i(R_RES, rng.gen()));
        program.push(
            Instruction::build(Opcode::Xor)
                .dst(reg(R_A))
                .src(reg(R_A))
                .src(reg(super::R_TID))
                .finish()
                .expect("lane mix"),
        );

        // Operate phase: chained pseudorandom SP operations.
        for _ in 0..rng.gen_range(8..=11) {
            let op = SP_OPS[rng.gen_range(0..SP_OPS.len())];
            let srcs = [R_A, R_B, R_C, R_RES];
            let mut b = Instruction::build(op)
                .dst(reg([R_A, R_B, R_C, R_RES][rng.gen_range(0..4)]))
                .src(reg(srcs[rng.gen_range(0..4)]));
            if !matches!(op, Opcode::Not | Opcode::Iabs) {
                b = b.src(reg(srcs[rng.gen_range(0..4)]));
            }
            if matches!(op, Opcode::Imad) {
                b = b.src(reg(srcs[rng.gen_range(0..4)]));
            }
            if op.has_cmp_modifier() {
                b = b.cmp(CmpOp::ALL[rng.gen_range(0..CmpOp::ALL.len())]);
            }
            program.push(b.finish().expect("SP op"));
        }
        program.push(
            Instruction::build(Opcode::Xor)
                .dst(reg(R_RES))
                .src(reg(R_RES))
                .src(reg(R_A))
                .finish()
                .expect("fold"),
        );
        program.push(store_result(R_RES));
    }
    program.push(Instruction::bare(Opcode::Exit));

    Ptp::new(
        "RAND",
        ModuleKind::SpCore,
        KernelConfig::new(1, config.threads),
        program,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::{Gpu, RunOptions};

    #[test]
    fn all_sp_cores_receive_patterns() {
        let ptp = generate_rand_sp(&RandConfig {
            sb_count: 4,
            ..RandConfig::default()
        });
        let kernel = ptp.to_kernel().unwrap();
        let opts = RunOptions {
            capture_sp: true,
            ..RunOptions::default()
        };
        let r = Gpu::default().run(&kernel, &opts).unwrap();
        for (i, sp) in r.patterns.sp.iter().enumerate() {
            assert!(!sp.is_empty(), "SP core {i} received no patterns");
        }
        // Lanes see distinct operand streams (the tid mix).
        assert_ne!(
            r.patterns.sp[0].row(0),
            r.patterns.sp[1].row(0),
            "lanes identical"
        );
    }

    #[test]
    fn only_sp_class_ops_in_body() {
        let ptp = generate_rand_sp(&RandConfig {
            sb_count: 16,
            ..RandConfig::default()
        });
        use warpstl_isa::ExecUnit;
        for i in &ptp.program {
            let u = ExecUnit::of(i.opcode);
            assert!(
                matches!(
                    u,
                    ExecUnit::SpCore | ExecUnit::LoadStore | ExecUnit::Control
                ),
                "{} on {u}",
                i.opcode
            );
        }
    }
}
