//! The CNTRL test program: immediate, memory and register formats arranged
//! to create special conditions for the control-flow instructions
//! (divergence regions and parametric loops), targeting the Decoder Unit.
//!
//! Configured as 1 block × 1024 threads, as in the paper. The parametric
//! loops are *inadmissible* regions: their iteration counts are computed in
//! registers, so compaction must leave them untouched — this is why the
//! paper reports only 90 % ARC and moderate compaction for CNTRL.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warpstl_gpu::KernelConfig;
use warpstl_isa::{CmpOp, Guard, Instruction, Opcode, Pred};
use warpstl_netlist::modules::ModuleKind;

use super::{mov32i, prologue, reg, store_result, R_A, R_B, R_LOOP, R_RES, R_TID};
use crate::Ptp;

/// Configuration of the CNTRL generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CntrlConfig {
    /// Number of divergence (if/else) regions.
    pub regions: usize,
    /// Number of parametric loops.
    pub loops: usize,
    /// Loop iterations (register-computed).
    pub iterations: u32,
    /// Threads per block (the paper uses 1024).
    pub threads: usize,
    /// Pseudorandom seed.
    pub seed: u64,
}

impl Default for CntrlConfig {
    fn default() -> Self {
        CntrlConfig {
            regions: 8,
            loops: 2,
            iterations: 4,
            threads: 1024,
            seed: 0x5555_6666,
        }
    }
}

/// Generates the CNTRL PTP.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_cntrl, CntrlConfig};
/// use warpstl_programs::{ArcAnalysis, BasicBlocks};
///
/// let ptp = generate_cntrl(&CntrlConfig::default());
/// let bbs = BasicBlocks::of(&ptp.program);
/// let arc = ArcAnalysis::of(&ptp.program, &bbs);
/// // Divergence regions are admissible, parametric loops are not.
/// assert!(arc.arc_fraction() > 0.7 && arc.arc_fraction() < 1.0);
/// ```
#[must_use]
pub fn generate_cntrl(config: &CntrlConfig) -> Ptp {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut program = prologue(None);
    let mut loops_emitted = 0usize;

    let loop_every = (config.regions / config.loops.max(1)).max(1);
    for r in 0..config.regions {
        emit_divergence_region(&mut program, &mut rng, r);
        if r % loop_every == 0 && loops_emitted < config.loops {
            emit_parametric_loop(&mut program, &mut rng, config.iterations);
            loops_emitted += 1;
        }
    }
    // One barrier exercise (BAR is a control format too).
    program.push(Instruction::bare(Opcode::Bar));
    program.push(Instruction::bare(Opcode::Exit));

    Ptp::new(
        "CNTRL",
        ModuleKind::DecoderUnit,
        KernelConfig::new(1, config.threads),
        program,
    )
}

/// Emits `SSY join; ISETP; @P1 BRA then; <else SB>; BRA join; then: <then
/// SB>; join: SYNC;` with targets computed eagerly.
fn emit_divergence_region(program: &mut Vec<Instruction>, rng: &mut StdRng, region: usize) {
    let p1 = Pred::new(1);
    // Thread-dependent condition over the tid.
    let threshold = rng.gen_range(1..1024);
    let cond = Instruction::build(Opcode::Isetp)
        .cmp(CmpOp::ALL[region % CmpOp::ALL.len()])
        .pdst(p1)
        .src(reg(R_TID))
        .src(threshold)
        .finish()
        .expect("ISETP");

    // Bodies are small SBs (load, op, store).
    let else_body = region_body(rng, 0x0bad_0000 + region as u32);
    let then_body = region_body(rng, 0x600d_0000 + region as u32);

    let ssy_pc = program.len();
    let bra_then_pc = ssy_pc + 2;
    let else_start = bra_then_pc + 1;
    let bra_join_pc = else_start + else_body.len();
    let then_start = bra_join_pc + 1;
    let join_pc = then_start + then_body.len();

    program.push(
        Instruction::build(Opcode::Ssy)
            .src(join_pc as i32)
            .finish()
            .expect("SSY"),
    );
    program.push(cond);
    program.push(
        Instruction::build(Opcode::Bra)
            .guard(Guard::on(p1))
            .src(then_start as i32)
            .finish()
            .expect("BRA"),
    );
    program.extend(else_body);
    program.push(
        Instruction::build(Opcode::Bra)
            .src(join_pc as i32)
            .finish()
            .expect("BRA"),
    );
    program.extend(then_body);
    debug_assert_eq!(program.len(), join_pc);
    program.push(Instruction::bare(Opcode::Sync));
}

fn region_body(rng: &mut StdRng, tag: u32) -> Vec<Instruction> {
    // Self-contained: R_RES seeds from this body's own loads.
    let mut body = vec![
        mov32i(R_A, tag ^ rng.gen::<u32>()),
        mov32i(R_B, rng.gen()),
        Instruction::build(Opcode::Xor)
            .dst(reg(R_RES))
            .src(reg(R_A))
            .src(reg(R_B))
            .finish()
            .expect("seed op"),
    ];
    for _ in 0..rng.gen_range(1..=3) {
        let ops = [
            Opcode::Iadd,
            Opcode::Xor,
            Opcode::And,
            Opcode::Or,
            Opcode::Isub,
        ];
        body.push(
            Instruction::build(ops[rng.gen_range(0..ops.len())])
                .dst(reg(R_RES))
                .src(reg([R_A, R_B, R_RES][rng.gen_range(0..3)]))
                .src(reg([R_A, R_B][rng.gen_range(0..2)]))
                .finish()
                .expect("op"),
        );
    }
    body.push(store_result(R_RES));
    body
}

/// Emits a parametric loop: the iteration count lives in `R8`, so the body
/// is inadmissible for compaction.
fn emit_parametric_loop(program: &mut Vec<Instruction>, rng: &mut StdRng, iterations: u32) {
    let p2 = Pred::new(2);
    program.push(mov32i(R_LOOP, iterations));
    let top = program.len();
    // Loop body: a small SB.
    program.push(mov32i(R_A, rng.gen()));
    program.push(
        Instruction::build(Opcode::Xor)
            .dst(reg(R_RES))
            .src(reg(R_A))
            .src(reg(R_LOOP))
            .finish()
            .expect("XOR"),
    );
    program.push(store_result(R_RES));
    program.push(
        Instruction::build(Opcode::Iadd)
            .dst(reg(R_LOOP))
            .src(reg(R_LOOP))
            .src(-1)
            .finish()
            .expect("IADD"),
    );
    program.push(
        Instruction::build(Opcode::Isetp)
            .cmp(CmpOp::Gt)
            .pdst(p2)
            .src(reg(R_LOOP))
            .src(0)
            .finish()
            .expect("ISETP"),
    );
    program.push(
        Instruction::build(Opcode::Bra)
            .guard(Guard::on(p2))
            .src(top as i32)
            .finish()
            .expect("BRA"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArcAnalysis, BasicBlocks, ControlFlowGraph};
    use warpstl_gpu::{Gpu, GpuConfig, RunOptions};

    fn small() -> CntrlConfig {
        CntrlConfig {
            regions: 3,
            loops: 1,
            iterations: 3,
            threads: 64,
            ..CntrlConfig::default()
        }
    }

    #[test]
    fn divergence_reconverges_and_terminates() {
        let ptp = generate_cntrl(&small());
        let kernel = ptp.to_kernel().unwrap();
        let config = GpuConfig {
            max_cycles: 50_000_000,
            ..GpuConfig::default()
        };
        let r = Gpu::new(config)
            .run(&kernel, &RunOptions::default())
            .unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn loops_are_inadmissible() {
        let ptp = generate_cntrl(&small());
        let bbs = BasicBlocks::of(&ptp.program);
        let cfg = ControlFlowGraph::of(&ptp.program, &bbs);
        let cyclic = bbs.iter().filter(|&b| cfg.in_cycle(b)).count();
        assert!(cyclic >= 1, "no loop blocks found");
        let arc = ArcAnalysis::of(&ptp.program, &bbs);
        assert!(arc.arc_fraction() < 1.0);
    }

    #[test]
    fn both_branch_sides_execute() {
        // With 64 threads and tid-dependent conditions, divergence happens;
        // both sides store, so outputs must be nonzero for all threads.
        let ptp = generate_cntrl(&small());
        let kernel = ptp.to_kernel().unwrap();
        let r = Gpu::default().run(&kernel, &RunOptions::default()).unwrap();
        let nonzero = (0..64u64)
            .filter(|t| {
                r.global_mem
                    .load_word(super::super::OUT_BASE + t * 4)
                    .unwrap()
                    != 0
            })
            .count();
        assert!(nonzero >= 60, "only {nonzero} threads stored");
    }

    #[test]
    fn uses_control_formats() {
        let ptp = generate_cntrl(&small());
        for op in [
            Opcode::Ssy,
            Opcode::Bra,
            Opcode::Sync,
            Opcode::Bar,
            Opcode::Exit,
        ] {
            assert!(ptp.program.iter().any(|i| i.opcode == op), "missing {op}");
        }
    }
}
