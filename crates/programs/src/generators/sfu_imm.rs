//! The SFU_IMM test program: ATPG patterns for the SFU datapath, parsed
//! into instructions.
//!
//! SFU SBs have no data dependence on each other (the paper notes this is
//! why SFU_IMM's fault coverage is unaffected by compaction): each SB loads
//! one operand, applies one transcendental operation, and stores.

use warpstl_atpg::convert::{convert_sfu_pattern, ConversionStats};
use warpstl_atpg::{generate_patterns, AtpgConfig, AtpgDropMode};
use warpstl_gpu::KernelConfig;
use warpstl_isa::{Instruction, Opcode};
use warpstl_netlist::modules::ModuleKind;

use super::{prologue, store_result, R_RES};
use crate::Ptp;

/// Configuration of the SFU_IMM generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfuImmConfig {
    /// Cap on generated ATPG patterns (0 = run the full fault list).
    pub max_patterns: usize,
    /// PODEM backtrack limit.
    pub backtrack_limit: usize,
    /// Seed for ATPG don't-care filling.
    pub seed: u64,
    /// Threads per block.
    pub threads: usize,
}

impl Default for SfuImmConfig {
    fn default() -> Self {
        SfuImmConfig {
            max_patterns: 60,
            backtrack_limit: 60,
            seed: 0xbbbb_cccc,
            threads: 32,
        }
    }
}

/// Generates the SFU_IMM PTP with conversion statistics.
#[must_use]
pub fn generate_sfu_imm_with_stats(config: &SfuImmConfig) -> (Ptp, ConversionStats) {
    let netlist = ModuleKind::Sfu.build();
    let atpg = generate_patterns(
        &netlist,
        &AtpgConfig {
            backtrack_limit: config.backtrack_limit,
            seed: config.seed,
            max_patterns: config.max_patterns,
            // One pattern per targeted fault, as commercial per-fault ATPG
            // flows produce: the set carries the incidental redundancy the
            // paper's compaction method exploits (75.81 % of TPGEN and
            // 41.20 % of SFU_IMM removed).
            drop_mode: AtpgDropMode::TargetOnly,
        },
    );

    let mut program = prologue(None);
    let mut stats = ConversionStats::default();
    for (pattern, care) in atpg.patterns.iter().zip(&atpg.assignments) {
        match convert_sfu_pattern(pattern, care) {
            Some(snippet) => {
                program.extend(snippet);
                program.push(store_result(R_RES));
                stats.converted += 1;
            }
            None => stats.dropped += 1,
        }
    }
    program.push(Instruction::bare(Opcode::Exit));

    let ptp = Ptp::new(
        "SFU_IMM",
        ModuleKind::Sfu,
        KernelConfig::new(1, config.threads),
        program,
    );
    (ptp, stats)
}

/// Generates the SFU_IMM PTP.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_sfu_imm, SfuImmConfig};
/// use warpstl_netlist::modules::ModuleKind;
///
/// let ptp = generate_sfu_imm(&SfuImmConfig { max_patterns: 5, ..SfuImmConfig::default() });
/// assert_eq!(ptp.target, ModuleKind::Sfu);
/// ```
#[must_use]
pub fn generate_sfu_imm(config: &SfuImmConfig) -> Ptp {
    generate_sfu_imm_with_stats(config).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::{Gpu, RunOptions};
    use warpstl_isa::OpClass;

    #[test]
    fn sbs_are_three_instructions_and_independent() {
        let ptp = generate_sfu_imm(&SfuImmConfig {
            max_patterns: 8,
            ..SfuImmConfig::default()
        });
        let bbs = crate::BasicBlocks::of(&ptp.program);
        let sbs = crate::segment_small_blocks(&ptp.program, &bbs);
        // Prologue merges into the first SB's run; the rest are exactly
        // MOV32I + SFU op + STG.
        for sb in &sbs[1..] {
            assert_eq!(sb.len(), 3);
        }
        // No SB reads the previous SB's result register after it is
        // reloaded: every SB starts with a MOV32I to R1.
        for sb in &sbs[1..] {
            assert_eq!(ptp.program[sb.start].opcode, Opcode::Mov32i);
        }
    }

    #[test]
    fn sfu_ops_present_and_run() {
        let ptp = generate_sfu_imm(&SfuImmConfig {
            max_patterns: 8,
            ..SfuImmConfig::default()
        });
        assert!(ptp.program.iter().any(|i| i.opcode.class() == OpClass::Sfu));
        let kernel = ptp.to_kernel().unwrap();
        let opts = RunOptions {
            capture_sfu: true,
            ..RunOptions::default()
        };
        let r = Gpu::default().run(&kernel, &opts).unwrap();
        assert!(!r.patterns.sfu[0].is_empty());
        assert!(!r.patterns.sfu[1].is_empty());
    }

    #[test]
    fn full_conversion_for_sfu_patterns() {
        // All valid SFU function selects convert (only reserved selects
        // would drop, and ATPG never produces them for this netlist).
        let (_, stats) = generate_sfu_imm_with_stats(&SfuImmConfig {
            max_patterns: 12,
            ..SfuImmConfig::default()
        });
        assert_eq!(stats.dropped, 0);
        assert!(stats.converted > 0);
    }
}
