//! The MEM test program: pseudorandom memory-access formats (global and
//! shared) targeting the Decoder Unit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warpstl_gpu::KernelConfig;
use warpstl_isa::{Instruction, Opcode};
use warpstl_netlist::modules::ModuleKind;

use super::{prologue, reg, store_result, INPUT_BASE, R_A, R_B, R_C, R_RES, R_SLOT, R_T4};
use crate::{Ptp, SbSlots};

/// Configuration of the MEM generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of Small Blocks.
    pub sb_count: usize,
    /// Pseudorandom seed.
    pub seed: u64,
    /// Threads per block.
    pub threads: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            sb_count: 64,
            seed: 0x3333_4444,
            threads: 32,
        }
    }
}

/// Words each SB reads from its global-memory input slot.
pub const WORDS_PER_SB: usize = 2;

/// Generates the MEM PTP.
///
/// Each SB loads two pseudorandom words from its per-thread input slot,
/// exercises shared-memory traffic and a couple of operations, and
/// propagates the result; input data lives in [`SbSlots`] layout so the
/// compaction flow can relocate it when SBs are removed.
///
/// # Panics
///
/// Panics if `sb_count * WORDS_PER_SB` exceeds the 16-bit offset reach
/// (8192 slots of two words).
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_mem, MemConfig};
///
/// let ptp = generate_mem(&MemConfig { sb_count: 8, ..MemConfig::default() });
/// assert!(ptp.sb_slots.is_some());
/// assert!(!ptp.global_init.is_empty());
/// ```
#[must_use]
pub fn generate_mem(config: &MemConfig) -> Ptp {
    assert!(
        config.sb_count * WORDS_PER_SB * 4 <= u16::MAX as usize + 1,
        "SB slots exceed the 16-bit offset reach"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Per-thread slot stride, padded to a power of two so the prologue can
    // compute it with a shift.
    let words = (config.sb_count * WORDS_PER_SB).next_power_of_two();
    let shift = (words * 4).trailing_zeros();
    let slots = SbSlots {
        base: INPUT_BASE,
        base_reg: R_SLOT,
        words_per_sb: WORDS_PER_SB,
        sb_count: config.sb_count,
        stride_words: words,
        threads: config.threads,
    };

    let mut program = prologue(Some(shift));
    for k in 0..config.sb_count {
        emit_sb(&mut program, &mut rng, k);
    }
    program.push(Instruction::bare(Opcode::Exit));

    // Input data: pseudorandom words per (thread, SB, word). The layout is
    // thread-major to match SbSlots::addr with a power-of-two thread stride.
    let mut global_init = Vec::new();
    for t in 0..config.threads {
        for k in 0..config.sb_count {
            for w in 0..WORDS_PER_SB {
                let addr =
                    INPUT_BASE + (t * words) as u64 * 4 + ((k * WORDS_PER_SB + w) as u64) * 4;
                global_init.push((addr, rng.gen()));
            }
        }
    }

    let mut ptp = Ptp::new(
        "MEM",
        ModuleKind::DecoderUnit,
        KernelConfig::new(1, config.threads),
        program,
    );
    ptp.global_init = global_init;
    ptp.sb_slots = Some(slots);
    ptp
}

fn emit_sb(program: &mut Vec<Instruction>, rng: &mut StdRng, k: usize) {
    let off = (k * WORDS_PER_SB * 4) as u16;
    let mut push = |i: Instruction| program.push(i);

    // Load phase: two global words from the SB's slot.
    push(
        Instruction::build(Opcode::Ldg)
            .dst(reg(R_A))
            .mem(reg(R_SLOT), off)
            .finish()
            .expect("LDG"),
    );
    push(
        Instruction::build(Opcode::Ldg)
            .dst(reg(R_B))
            .mem(reg(R_SLOT), off + 4)
            .finish()
            .expect("LDG"),
    );
    // Shared-memory round trip at the thread's own slot.
    push(
        Instruction::build(Opcode::Sts)
            .mem(reg(R_T4), 0)
            .src(reg(R_A))
            .finish()
            .expect("STS"),
    );
    push(
        Instruction::build(Opcode::Lds)
            .dst(reg(R_C))
            .mem(reg(R_T4), 0)
            .finish()
            .expect("LDS"),
    );
    // Occasionally exercise the local-memory format too.
    if k.is_multiple_of(4) {
        push(
            Instruction::build(Opcode::Stl)
                .mem(reg(R_T4), 0)
                .src(reg(R_B))
                .finish()
                .expect("STL"),
        );
        push(
            Instruction::build(Opcode::Ldl)
                .dst(reg(R_B))
                .mem(reg(R_T4), 0)
                .finish()
                .expect("LDL"),
        );
    }

    // Operate phase: the first operation defines R_RES from this SB's own
    // loads (no cross-SB dependence), then a few dependent operations.
    push(
        Instruction::build(Opcode::Iadd)
            .dst(reg(R_RES))
            .src(reg(R_A))
            .src(reg(R_B))
            .finish()
            .expect("seed op"),
    );
    let ops = [
        Opcode::Iadd,
        Opcode::Xor,
        Opcode::Isub,
        Opcode::And,
        Opcode::Or,
    ];
    for _ in 0..rng.gen_range(5..=8) {
        let op = ops[rng.gen_range(0..ops.len())];
        let srcs = [R_A, R_B, R_C, R_RES];
        push(
            Instruction::build(op)
                .dst(reg(R_RES))
                .src(reg(srcs[rng.gen_range(0..4)]))
                .src(reg(srcs[rng.gen_range(0..4)]))
                .finish()
                .expect("op"),
        );
    }
    push(store_result(R_RES));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{segment_small_blocks, BasicBlocks};
    use warpstl_gpu::{Gpu, RunOptions};

    #[test]
    fn sb_count_matches() {
        let ptp = generate_mem(&MemConfig {
            sb_count: 12,
            ..MemConfig::default()
        });
        let bbs = BasicBlocks::of(&ptp.program);
        let sbs = segment_small_blocks(&ptp.program, &bbs);
        // Stores split runs: the STS ends one segment, the optional STL (on
        // every fourth SB) another, and the final STG a third. 12 logical
        // SBs = 24 store-terminated segments + 3 STL segments.
        assert_eq!(sbs.len(), 27);
    }

    #[test]
    fn loads_see_initialized_data() {
        let ptp = generate_mem(&MemConfig {
            sb_count: 4,
            ..MemConfig::default()
        });
        let kernel = ptp.to_kernel().unwrap();
        let r = Gpu::default().run(&kernel, &RunOptions::default()).unwrap();
        // Every thread stored a result derived from nonzero random data.
        let nonzero = (0..32u64)
            .filter(|t| {
                r.global_mem
                    .load_word(super::super::OUT_BASE + t * 4)
                    .unwrap()
                    != 0
            })
            .count();
        assert!(nonzero > 16, "only {nonzero} nonzero results");
    }

    #[test]
    fn slot_layout_is_consistent_with_init() {
        let cfg = MemConfig {
            sb_count: 8,
            threads: 4,
            ..MemConfig::default()
        };
        let ptp = generate_mem(&cfg);
        let slots = ptp.sb_slots.unwrap();
        // The generator's addressing (power-of-two stride) must cover the
        // words SbSlots says each SB reads... verify every init address is
        // unique and word-aligned.
        let mut addrs: Vec<u64> = ptp.global_init.iter().map(|&(a, _)| a).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), ptp.global_init.len());
        assert!(addrs.iter().all(|a| a % 4 == 0));
        assert_eq!(slots.sb_count, 8);
    }

    #[test]
    #[should_panic(expected = "16-bit offset")]
    fn oversized_slot_array_panics() {
        let _ = generate_mem(&MemConfig {
            sb_count: 9000,
            ..MemConfig::default()
        });
    }
}
