//! The IMM test program: pseudorandom coverage of every instruction format
//! with at least one immediate operand, plus register-based formats
//! (targeting the Decoder Unit).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use warpstl_gpu::KernelConfig;
use warpstl_isa::{CmpOp, Guard, Instruction, Opcode, Pred};
use warpstl_netlist::modules::ModuleKind;

use super::{mov32i, prologue, reg, store_result, R_A, R_B, R_C, R_RES};
use crate::Ptp;

/// Configuration of the IMM generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmConfig {
    /// Number of Small Blocks (each 15–18 instructions, as in the paper).
    pub sb_count: usize,
    /// Pseudorandom seed.
    pub seed: u64,
    /// Threads per block (the paper uses 1 block × 32 threads).
    pub threads: usize,
}

impl Default for ImmConfig {
    fn default() -> Self {
        ImmConfig {
            sb_count: 64,
            seed: 0x1111_2222,
            threads: 32,
        }
    }
}

/// Opcodes usable in the pseudorandom body, grouped by operand shape.
const IMM32_OPS: [Opcode; 7] = [
    Opcode::Iadd32i,
    Opcode::Imul32i,
    Opcode::And32i,
    Opcode::Or32i,
    Opcode::Xor32i,
    Opcode::Fadd32i,
    Opcode::Fmul32i,
];
const IMM16_OPS: [Opcode; 9] = [
    Opcode::Iadd,
    Opcode::Isub,
    Opcode::Imul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Imnmx,
];
const REG_OPS: [Opcode; 10] = [
    Opcode::Iadd,
    Opcode::Isub,
    Opcode::Imul,
    Opcode::Imad,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Fadd,
    Opcode::Fmul,
    Opcode::Ffma,
];
const UNARY_OPS: [Opcode; 6] = [
    Opcode::Not,
    Opcode::Iabs,
    Opcode::Mov,
    Opcode::I2f,
    Opcode::I2i,
    Opcode::F2f,
];

/// Generates the IMM PTP.
///
/// # Examples
///
/// ```
/// use warpstl_programs::generators::{generate_imm, ImmConfig};
///
/// let ptp = generate_imm(&ImmConfig { sb_count: 8, ..ImmConfig::default() });
/// assert_eq!(ptp.name, "IMM");
/// // 15-18 instructions per SB plus prologue and EXIT.
/// assert!(ptp.size() >= 8 * 15);
/// ```
#[must_use]
pub fn generate_imm(config: &ImmConfig) -> Ptp {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut program = prologue(None);

    for _ in 0..config.sb_count {
        emit_sb(&mut program, &mut rng);
    }
    program.push(Instruction::bare(Opcode::Exit));

    Ptp::new(
        "IMM",
        ModuleKind::DecoderUnit,
        KernelConfig::new(1, config.threads),
        program,
    )
}

fn random_cmp(rng: &mut StdRng) -> CmpOp {
    CmpOp::ALL[rng.gen_range(0..CmpOp::ALL.len())]
}

fn random_src(rng: &mut StdRng) -> u8 {
    [R_A, R_B, R_C, R_RES][rng.gen_range(0..4)]
}

fn random_dst(rng: &mut StdRng) -> u8 {
    [R_A, R_B, R_C, R_RES][rng.gen_range(0..4)]
}

fn emit_sb(program: &mut Vec<Instruction>, rng: &mut StdRng) {
    // Load phase: fresh pseudorandom operands. Every register and predicate
    // the SB can read is defined here, so SBs carry no data dependence on
    // one another (the paper's SBs are self-contained load–operate–store
    // units; this is what makes them individually removable).
    program.push(mov32i(R_A, rng.gen()));
    program.push(mov32i(R_B, rng.gen()));
    program.push(mov32i(R_C, rng.gen()));
    program.push(mov32i(R_RES, rng.gen()));
    program.push(
        Instruction::build(Opcode::Isetp)
            .cmp(random_cmp(rng))
            .pdst(Pred::new(1))
            .src(reg(R_A))
            .src(reg(R_B))
            .finish()
            .expect("P1 define"),
    );

    // Operate phase: 8 to 11 pseudorandom operations mixing formats.
    let body = rng.gen_range(8..=11);
    for _ in 0..body {
        let instr = match rng.gen_range(0..6) {
            0 => {
                let op = IMM32_OPS[rng.gen_range(0..IMM32_OPS.len())];
                Instruction::build(op)
                    .dst(reg(random_dst(rng)))
                    .src(reg(random_src(rng)))
                    .src(rng.gen::<i32>())
                    .finish()
                    .expect("imm32 op")
            }
            1 => {
                let op = IMM16_OPS[rng.gen_range(0..IMM16_OPS.len())];
                let mut b = Instruction::build(op)
                    .dst(reg(random_dst(rng)))
                    .src(reg(random_src(rng)))
                    .src(rng.gen_range(-(1 << 15)..(1 << 15)));
                if op.has_cmp_modifier() {
                    b = b.cmp(random_cmp(rng));
                }
                b.finish().expect("imm16 op")
            }
            2 => {
                let op = REG_OPS[rng.gen_range(0..REG_OPS.len())];
                let mut b = Instruction::build(op)
                    .dst(reg(random_dst(rng)))
                    .src(reg(random_src(rng)))
                    .src(reg(random_src(rng)));
                if matches!(op, Opcode::Imad | Opcode::Ffma) {
                    b = b.src(reg(random_src(rng)));
                }
                b.finish().expect("reg op")
            }
            3 => {
                let op = UNARY_OPS[rng.gen_range(0..UNARY_OPS.len())];
                Instruction::build(op)
                    .dst(reg(random_dst(rng)))
                    .src(reg(random_src(rng)))
                    .finish()
                    .expect("unary op")
            }
            4 => {
                // Predicate-setting compare, immediate or register form.
                let p = Pred::new(rng.gen_range(1..4));
                let mut b = Instruction::build(Opcode::Isetp)
                    .cmp(random_cmp(rng))
                    .pdst(p)
                    .src(reg(random_src(rng)));
                if rng.gen() {
                    b = b.src(rng.gen_range(-(1 << 15)..(1 << 15)));
                } else {
                    b = b.src(reg(random_src(rng)));
                }
                b.finish().expect("ISETP")
            }
            _ => {
                // Occasionally a guarded op or a SEL consuming a predicate.
                // Only P1 is read: the SB defines it in its load phase, so
                // the dependence stays SB-local.
                let p = Pred::new(1);
                if rng.gen() {
                    Instruction::build(Opcode::Sel)
                        .dst(reg(random_dst(rng)))
                        .src(reg(random_src(rng)))
                        .src(reg(random_src(rng)))
                        .psrc(p)
                        .finish()
                        .expect("SEL")
                } else {
                    let guard = if rng.gen() {
                        Guard::on(p)
                    } else {
                        Guard::negated(p)
                    };
                    Instruction::build(Opcode::Iadd32i)
                        .guard(guard)
                        .dst(reg(random_dst(rng)))
                        .src(reg(random_src(rng)))
                        .src(rng.gen::<i32>())
                        .finish()
                        .expect("guarded op")
                }
            }
        };
        program.push(instr);
    }

    // Fold the operands into the result so the body is not dead code, then
    // propagate.
    program.push(
        Instruction::build(Opcode::Xor)
            .dst(reg(R_RES))
            .src(reg(R_A))
            .src(reg(R_B))
            .finish()
            .expect("fold"),
    );
    program.push(store_result(R_RES));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{segment_small_blocks, BasicBlocks};
    use warpstl_isa::InstrFormat;

    #[test]
    fn covers_every_imm32_format() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 40,
            ..ImmConfig::default()
        });
        for op in IMM32_OPS {
            assert!(ptp.program.iter().any(|i| i.opcode == op), "missing {op}");
        }
        // The paper's IMM also includes register-based instructions.
        let has_reg = ptp
            .program
            .iter()
            .any(|i| InstrFormat::of(i) == InstrFormat::Register);
        assert!(has_reg);
    }

    #[test]
    fn sb_sizes_match_the_paper_band() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 30,
            ..ImmConfig::default()
        });
        let bbs = BasicBlocks::of(&ptp.program);
        let sbs = segment_small_blocks(&ptp.program, &bbs);
        assert_eq!(sbs.len(), 30);
        for sb in &sbs[1..] {
            // The paper: SBs of 15 to 18 instructions.
            assert!(
                (15..=18).contains(&sb.len()),
                "SB of {} instructions",
                sb.len()
            );
        }
    }

    #[test]
    fn never_clobbers_reserved_registers() {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 50,
            ..ImmConfig::default()
        });
        for i in &ptp.program[4..] {
            if let Some(d) = i.dst {
                assert!((1..=4).contains(&d.index()), "{i} writes reserved {d}");
            }
        }
    }
}
