//! Admissible Regions for Compaction (stage 1 of the method).

use warpstl_isa::Instruction;

use crate::{BasicBlocks, ControlFlowGraph};

/// The ARC analysis: which basic blocks may be compacted.
///
/// Per the paper's stage 1, the ARC contains every BB of the PTP *except*
/// those involved in parametric loops (CFG cycles): removing instructions
/// from a loop body would change the iteration behaviour the test was
/// designed around.
///
/// # Examples
///
/// ```
/// use warpstl_programs::{ArcAnalysis, BasicBlocks};
///
/// let p = warpstl_isa::asm::assemble(
///     "MOV32I R1, 0;\n\
///      top: IADD R1, R1, 0x1;\n\
///      ISETP.LT P0, R1, 0x8;\n\
///      @P0 BRA top;\n\
///      EXIT;",
/// ).unwrap();
/// let bbs = BasicBlocks::of(&p);
/// let arc = ArcAnalysis::of(&p, &bbs);
/// assert!(!arc.is_admissible(bbs.block_of(1).unwrap())); // the loop body
/// assert!(arc.is_admissible(bbs.block_of(0).unwrap()));  // the preamble
/// assert!(arc.arc_fraction() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ArcAnalysis {
    admissible: Vec<bool>,
    arc_instructions: usize,
    total_instructions: usize,
}

impl ArcAnalysis {
    /// Analyzes `program` over its basic-block partition.
    #[must_use]
    pub fn of(program: &[Instruction], bbs: &BasicBlocks) -> ArcAnalysis {
        let cfg = ControlFlowGraph::of(program, bbs);
        let admissible: Vec<bool> = bbs.iter().map(|b| !cfg.in_cycle(b)).collect();
        let arc_instructions = bbs
            .iter()
            .filter(|&b| admissible[b])
            .map(|b| bbs.range(b).len())
            .sum();
        ArcAnalysis {
            admissible,
            arc_instructions,
            total_instructions: program.len(),
        }
    }

    /// Whether block `b` belongs to the ARC.
    #[must_use]
    pub fn is_admissible(&self, b: usize) -> bool {
        self.admissible[b]
    }

    /// The fraction of instructions inside the ARC — the paper's *ARC (%)*
    /// column of Table I.
    #[must_use]
    pub fn arc_fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        self.arc_instructions as f64 / self.total_instructions as f64
    }

    /// Instructions inside the ARC.
    #[must_use]
    pub fn arc_instructions(&self) -> usize {
        self.arc_instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_isa::asm;

    #[test]
    fn straight_line_is_fully_admissible() {
        let p = asm::assemble("NOP;\nNOP;\nEXIT;").unwrap();
        let bbs = BasicBlocks::of(&p);
        let arc = ArcAnalysis::of(&p, &bbs);
        assert_eq!(arc.arc_fraction(), 1.0);
        assert_eq!(arc.arc_instructions(), 3);
    }

    #[test]
    fn nested_branch_without_loop_is_admissible() {
        let p = asm::assemble(
            "SSY j;\n\
             @P0 BRA e;\n\
             NOP;\n\
             BRA j;\n\
             e: NOP;\n\
             j: SYNC;\n\
             EXIT;",
        )
        .unwrap();
        let bbs = BasicBlocks::of(&p);
        let arc = ArcAnalysis::of(&p, &bbs);
        assert_eq!(arc.arc_fraction(), 1.0);
    }

    #[test]
    fn loop_fraction_matches_instruction_count() {
        // 2 preamble + 3 loop + 1 exit: ARC = 3/6.
        let p = asm::assemble(
            "MOV32I R1, 0;\n\
             MOV32I R2, 5;\n\
             top: IADD R1, R1, 0x1;\n\
             ISETP.LT P0, R1, R2;\n\
             @P0 BRA top;\n\
             EXIT;",
        )
        .unwrap();
        let bbs = BasicBlocks::of(&p);
        let arc = ArcAnalysis::of(&p, &bbs);
        assert!(
            (arc.arc_fraction() - 0.5).abs() < 1e-12,
            "{}",
            arc.arc_fraction()
        );
    }
}
