#![warn(missing_docs)]
//! # warpstl
//!
//! A from-scratch reproduction of *"A Compaction Method for STLs for GPU
//! in-field test"* (DATE 2022): Self-Test Library compaction for GPUs with
//! **one logic simulation and one fault simulation per test program**, plus
//! every substrate the method needs — a FlexGripPlus-style SIMT GPU model,
//! a SASS-like ISA, gate-level models of the targeted GPU modules, stuck-at
//! and transition-delay fault simulation, PODEM ATPG, and the paper's six
//! test-program generators.
//!
//! This facade re-exports the member crates under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `warpstl-isa` | instructions, encoding, assembler |
//! | [`netlist`] | `warpstl-netlist` | gate-level substrate + GPU modules |
//! | [`fault`] | `warpstl-fault` | stuck-at & transition-delay fault simulation |
//! | [`gpu`] | `warpstl-gpu` | the MiniGrip SIMT GPU model |
//! | [`atpg`] | `warpstl-atpg` | PODEM + pattern→instruction conversion |
//! | [`programs`] | `warpstl-programs` | PTPs, STLs, CFG/ARC/SB analyses, generators |
//! | [`verify`] | `warpstl-verify` | static PTP verifier (dataflow lint rules) |
//! | [`obs`] | `warpstl-obs` | spans, metrics, Chrome-trace export |
//! | [`compactor`] | `warpstl-core` | the five-stage compaction method + baseline |
//! | [`serve`] | `warpstl-serve` | the sharded HTTP/1.1+JSON compaction daemon |
//!
//! # Examples
//!
//! Compact a pseudorandom Decoder-Unit test program:
//!
//! ```
//! use warpstl::compactor::Compactor;
//! use warpstl::netlist::modules::ModuleKind;
//! use warpstl::programs::generators::{generate_imm, ImmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ptp = generate_imm(&ImmConfig { sb_count: 8, ..ImmConfig::default() });
//! let compactor = Compactor::default();
//! let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
//! let outcome = compactor.compact(&ptp, &mut ctx)?;
//! assert!(outcome.compacted.size() <= ptp.size());
//! assert_eq!(outcome.report.fault_sim_runs, 1); // the paper's headline
//! # Ok(())
//! # }
//! ```
//!
//! See the repository's `README.md`, `DESIGN.md` and `EXPERIMENTS.md` for
//! the architecture and the paper-versus-measured evaluation, and the
//! `examples/` directory for runnable scenarios.

pub use warpstl_atpg as atpg;
pub use warpstl_core as compactor;
pub use warpstl_fault as fault;
pub use warpstl_gpu as gpu;
pub use warpstl_isa as isa;
pub use warpstl_netlist as netlist;
pub use warpstl_obs as obs;
pub use warpstl_programs as programs;
pub use warpstl_serve as serve;
pub use warpstl_verify as verify;
