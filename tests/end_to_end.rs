//! Cross-crate integration tests: the full compaction flow from generator
//! to compacted, re-runnable PTP.

use warpstl::compactor::{baseline::IterativeCompactor, Compactor};
use warpstl::fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
use warpstl::gpu::{Gpu, RunOptions};
use warpstl::netlist::modules::ModuleKind;
use warpstl::programs::generators::{
    generate_cntrl, generate_imm, generate_mem, generate_rand_sp, generate_sfu_imm, generate_tpgen,
    CntrlConfig, ImmConfig, MemConfig, RandConfig, SfuImmConfig, TpgenConfig,
};
use warpstl::programs::{segment_small_blocks, BasicBlocks, Ptp};

/// Standalone coverage of a PTP at module level (fresh lists).
fn standalone_fc(ptp: &Ptp, module: ModuleKind) -> f64 {
    let gpu = Gpu::default();
    let run = gpu
        .run(
            &ptp.to_kernel().expect("kernel"),
            &RunOptions::capture_all(),
        )
        .expect("runs");
    let netlist = module.build();
    let universe = FaultUniverse::enumerate(&netlist);
    let streams: Vec<_> = match module {
        ModuleKind::DecoderUnit => vec![&run.patterns.du],
        ModuleKind::SpCore => run.patterns.sp.iter().collect(),
        ModuleKind::Sfu => run.patterns.sfu.iter().collect(),
        ModuleKind::Fp32 => run.patterns.fp32.iter().collect(),
    };
    let mut acc = 0.0;
    for s in &streams {
        let mut list = FaultList::new(&universe);
        if !s.is_empty() {
            fault_simulate(&netlist, s, &mut list, &FaultSimConfig::default());
        }
        acc += list.coverage();
    }
    acc / streams.len() as f64
}

#[test]
fn du_flow_compacts_and_preserves_standalone_coverage() {
    let ptp = generate_imm(&ImmConfig {
        sb_count: 20,
        ..ImmConfig::default()
    });
    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let out = compactor.compact(&ptp, &mut ctx).expect("compacts");

    // The compacted PTP runs and is smaller.
    assert!(out.compacted.size() < ptp.size());
    let fc_orig = standalone_fc(&ptp, ModuleKind::DecoderUnit);
    let fc_comp = standalone_fc(&out.compacted, ModuleKind::DecoderUnit);
    // First PTP against a fresh list: labeling preserves every first
    // detection, so the coverage holds to within sequence effects.
    assert!(
        fc_comp >= fc_orig - 0.02,
        "coverage fell {fc_orig} -> {fc_comp}"
    );
}

#[test]
fn full_stl_order_matches_paper_flow() {
    // IMM -> MEM -> CNTRL on the DU; TPGEN -> RAND on the SPs; SFU_IMM on
    // the SFUs with reversed patterns. Everything must compact and re-run.
    let compactor = Compactor::default();

    let mut du_ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let du_ptps = [
        generate_imm(&ImmConfig {
            sb_count: 10,
            ..ImmConfig::default()
        }),
        generate_mem(&MemConfig {
            sb_count: 10,
            ..MemConfig::default()
        }),
        generate_cntrl(&CntrlConfig {
            regions: 3,
            loops: 1,
            threads: 64,
            ..CntrlConfig::default()
        }),
    ];
    let mut compacted_du = Vec::new();
    for ptp in &du_ptps {
        let out = compactor.compact(ptp, &mut du_ctx).expect("compacts");
        let kernel = out.compacted.to_kernel().expect("kernel");
        Gpu::default()
            .run(&kernel, &RunOptions::default())
            .expect("compacted PTP runs");
        compacted_du.push(out.compacted);
    }
    // CNTRL's parametric loops are inadmissible: they survive compaction
    // intact (the compacted program still contains a CFG cycle).
    let cntrl = &compacted_du[2];
    let bbs = BasicBlocks::of(&cntrl.program);
    let cfg = warpstl::programs::ControlFlowGraph::of(&cntrl.program, &bbs);
    assert!(
        bbs.iter().any(|b| cfg.in_cycle(b)),
        "compacted CNTRL lost its parametric loop"
    );

    let mut sp_ctx = compactor.context_for(ModuleKind::SpCore);
    let tpgen = generate_tpgen(&TpgenConfig {
        max_patterns: 12,
        ..TpgenConfig::default()
    });
    let rand = generate_rand_sp(&RandConfig {
        sb_count: 10,
        ..RandConfig::default()
    });
    let t = compactor.compact(&tpgen, &mut sp_ctx).expect("TPGEN");
    let r = compactor.compact(&rand, &mut sp_ctx).expect("RAND");
    assert!(t.compacted.size() <= tpgen.size());
    assert!(r.compacted.size() <= rand.size());

    let sfu_compactor = Compactor {
        reverse_patterns: true,
        ..Compactor::default()
    };
    let mut sfu_ctx = sfu_compactor.context_for(ModuleKind::Sfu);
    let sfu = generate_sfu_imm(&SfuImmConfig {
        max_patterns: 12,
        ..SfuImmConfig::default()
    });
    let s = sfu_compactor.compact(&sfu, &mut sfu_ctx).expect("SFU_IMM");
    assert!(s.compacted.size() <= sfu.size());
}

#[test]
fn compacted_mem_ptp_data_relocation_is_consistent() {
    // After compaction, surviving loads must read exactly the words the
    // relocated image provides (no dangling slot reads).
    let ptp = generate_mem(&MemConfig {
        sb_count: 12,
        ..MemConfig::default()
    });
    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let out = compactor.compact(&ptp, &mut ctx).expect("compacts");
    // Runs without memory errors.
    let kernel = out.compacted.to_kernel().expect("kernel");
    Gpu::default()
        .run(&kernel, &RunOptions::default())
        .expect("relocated PTP runs");
    // If SBs vanished, data shrank too.
    if out.report.sbs_removed > 0 {
        assert!(out.compacted.global_init.len() <= ptp.global_init.len());
    }
}

#[test]
fn method_is_never_worse_than_doing_nothing_and_faster_than_baseline() {
    let ptp = generate_imm(&ImmConfig {
        sb_count: 6,
        ..ImmConfig::default()
    });
    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let fast = compactor.compact(&ptp, &mut ctx).expect("method");

    let base_ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let (_, slow) = IterativeCompactor::default()
        .compact(&ptp, &base_ctx)
        .expect("baseline");

    assert_eq!(fast.report.fault_sim_runs, 1);
    assert!(slow.fault_sim_runs > 1);
    assert!(fast.compacted.size() <= ptp.size());
}

#[test]
fn labels_respect_sb_granularity() {
    // Any removed instruction must belong to an SB that was removed whole:
    // the compacted program contains every SB either fully or not at all.
    let ptp = generate_imm(&ImmConfig {
        sb_count: 15,
        ..ImmConfig::default()
    });
    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let out = compactor.compact(&ptp, &mut ctx).expect("compacts");

    let bbs = BasicBlocks::of(&ptp.program);
    let sbs = segment_small_blocks(&ptp.program, &bbs);
    let removed_total: usize = ptp.size() - out.compacted.size();
    let sb_lens: Vec<usize> = sbs.iter().map(|s| s.len()).collect();
    // The removal total must be expressible as a sum of whole SB lengths.
    // (Cheap necessary condition: every SB has 15..=18 instructions here.)
    if removed_total > 0 {
        let min = sb_lens.iter().min().copied().unwrap_or(1);
        assert!(removed_total >= min);
    }
}
