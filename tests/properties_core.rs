//! Property-based tests over the compaction pipeline's invariants.

use std::sync::Arc;

use proptest::prelude::*;

use warpstl::compactor::{label_instructions, reduce_ptp, Compactor};
use warpstl::fault::FaultSimReport;
use warpstl::gpu::{Gpu, RunOptions};
use warpstl::netlist::modules::ModuleKind;
use warpstl::obs::Recorder;
use warpstl::programs::generators::{
    generate_cntrl, generate_imm, generate_mem, CntrlConfig, ImmConfig, MemConfig,
};
use warpstl::programs::{segment_small_blocks, BasicBlocks, Ptp};
use warpstl::verify::{verify_reduction, VerifyOptions};

/// A small pseudorandom PTP (IMM or MEM flavoured).
fn arb_ptp() -> impl Strategy<Value = Ptp> {
    (any::<u64>(), 2usize..10, any::<bool>()).prop_map(|(seed, sb_count, mem)| {
        if mem {
            generate_mem(&MemConfig {
                sb_count,
                seed,
                ..MemConfig::default()
            })
        } else {
            generate_imm(&ImmConfig {
                sb_count,
                seed,
                ..ImmConfig::default()
            })
        }
    })
}

/// Like [`arb_ptp`] but also drawing CNTRL programs, whose parametric loops
/// and `SSY`/`SYNC` regions exercise the verifier's control-flow rules.
fn arb_ptp_any_flavour() -> impl Strategy<Value = Ptp> {
    (any::<u64>(), 2usize..10, 0usize..3).prop_map(|(seed, sb_count, flavour)| match flavour {
        0 => generate_imm(&ImmConfig {
            sb_count,
            seed,
            ..ImmConfig::default()
        }),
        1 => generate_mem(&MemConfig {
            sb_count,
            seed,
            ..MemConfig::default()
        }),
        _ => generate_cntrl(&CntrlConfig {
            seed,
            ..CntrlConfig::default()
        }),
    })
}

/// Labels derived from a synthetic detection pattern over the traced run.
fn labels_for(
    ptp: &Ptp,
    detect_mask: u64,
) -> (warpstl::compactor::Labels, warpstl::gpu::RunResult) {
    let run = Gpu::default()
        .run(&ptp.to_kernel().expect("kernel"), &RunOptions::tracing())
        .expect("runs");
    let mut report = FaultSimReport::new();
    for (i, rec) in run.trace.records().iter().enumerate() {
        if (detect_mask >> (i % 64)) & 1 == 1 {
            report.record_pattern(rec.cc_start, 1, 1);
        }
    }
    let labels = label_instructions(ptp.program.len(), &run.trace, &report);
    (labels, run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Reduction never touches essential instructions, keeps relative
    /// order, and produces in-bounds branch targets.
    #[test]
    fn reduction_invariants(ptp in arb_ptp(), mask in any::<u64>()) {
        let (labels, _) = labels_for(&ptp, mask);
        let r = reduce_ptp(&ptp, &labels);

        // Size accounting.
        prop_assert_eq!(r.program.len() + r.removed_instructions, ptp.program.len());

        // The kept program is a subsequence of the original, modulo branch
        // target and slot-offset rewrites.
        let strip = |i: &warpstl::isa::Instruction| (i.opcode, i.dst, i.pdst, i.guard);
        let kept: Vec<_> = r.program.iter().map(strip).collect();
        let mut orig = ptp.program.iter().map(strip);
        for k in &kept {
            prop_assert!(orig.any(|o| o == *k), "not a subsequence");
        }

        // Every essential instruction survives.
        let essential_count = (0..ptp.program.len())
            .filter(|&pc| labels.is_essential(pc))
            .count();
        prop_assert!(r.program.len() >= essential_count);

        // Branch targets are in bounds.
        for i in &r.program {
            if let Some(t) = i.target() {
                prop_assert!(t <= r.program.len(), "target {t} out of bounds");
            }
        }

        // The compacted PTP still executes.
        let mut compacted = ptp.clone();
        compacted.program = r.program;
        compacted.global_init = r.global_init;
        compacted.sb_slots = r.sb_slots;
        let run = Gpu::default()
            .run(&compacted.to_kernel().expect("kernel"), &RunOptions::default());
        prop_assert!(run.is_ok(), "compacted PTP failed: {:?}", run.err());
    }

    /// All-essential labels remove nothing; all-unessential labels remove
    /// every admissible, liveness-free SB.
    #[test]
    fn labeling_extremes(ptp in arb_ptp()) {
        let (all_essential, _) = labels_for(&ptp, u64::MAX);
        let r = reduce_ptp(&ptp, &all_essential);
        prop_assert_eq!(r.removed_sbs, 0);
        prop_assert_eq!(r.program.len(), ptp.program.len());

        let (none_essential, _) = labels_for(&ptp, 0);
        let r = reduce_ptp(&ptp, &none_essential);
        let bbs = BasicBlocks::of(&ptp.program);
        let sbs = segment_small_blocks(&ptp.program, &bbs);
        prop_assert!(r.removed_sbs + r.liveness_protected <= sbs.len());
        // With self-contained generators, most SBs go.
        prop_assert!(r.removed_sbs > 0);
    }

    /// Every reduce-produced CPTP passes the static verifier with zero
    /// errors, whatever the detection labeling — the gate never rejects the
    /// pipeline's own output.
    #[test]
    fn reduction_output_verifies_clean(ptp in arb_ptp_any_flavour(), mask in any::<u64>()) {
        let (labels, _) = labels_for(&ptp, mask);
        let r = reduce_ptp(&ptp, &labels);
        let mut compacted = ptp.clone();
        compacted.program = r.program;
        compacted.global_init = r.global_init;
        compacted.sb_slots = r.sb_slots;
        let report = verify_reduction(&ptp, &compacted, &r.removed_pcs, &VerifyOptions::default());
        prop_assert_eq!(report.error_count(), 0, "verifier rejected: {}", report);
    }

    /// The observability counters a compaction records agree with the
    /// `CompactionReport` it returns, for every generated program: the
    /// metrics layer is a second bookkeeping path through the same pipeline,
    /// so any drift between the two is a bug in one of them.
    #[test]
    fn metrics_counters_match_report_fields(ptp in arb_ptp()) {
        let compactor = Compactor {
            obs: Some(Arc::new(Recorder::new())),
            ..Compactor::default()
        };
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let out = compactor.compact(&ptp, &mut ctx).expect("compacts");
        let r = &out.report;
        let m = &r.metrics;

        prop_assert_eq!(m.counter("pipeline.ptps"), 1);
        prop_assert_eq!(m.counter("pipeline.fsim_runs"), r.fault_sim_runs as u64);
        prop_assert_eq!(m.counter("pipeline.logic_sim_runs"), r.logic_sim_runs as u64);
        prop_assert_eq!(m.counter("label.essential"), r.essential_instructions as u64);
        prop_assert_eq!(m.counter("reduce.sbs_total"), r.sbs_total as u64);
        prop_assert_eq!(m.counter("reduce.sbs_removed"), r.sbs_removed as u64);
        prop_assert_eq!(
            m.counter("reduce.instructions_removed"),
            (r.original_size - r.compacted_size) as u64
        );
        prop_assert_eq!(m.counter("verify.errors"), r.verify.total_errors() as u64);
        prop_assert_eq!(m.counter("verify.warnings"), r.verify.total_warnings() as u64);
        // Raw engine counters include the eval-stage simulations, so they
        // bound the pipeline's budgeted count from above.
        prop_assert!(m.counter("fsim.runs") >= m.counter("pipeline.fsim_runs"));
    }

    /// Compaction is idempotent: compacting a compacted PTP with the same
    /// (fresh) context removes nothing new of significance — every SB that
    /// survived did so because it detects or feeds something.
    #[test]
    fn compaction_is_stable(seed in any::<u64>()) {
        let ptp = generate_imm(&ImmConfig {
            sb_count: 5,
            seed,
            ..ImmConfig::default()
        });
        let compactor = Compactor::default();
        let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
        let once = compactor.compact(&ptp, &mut ctx).expect("first pass");
        let mut ctx2 = compactor.context_for(ModuleKind::DecoderUnit);
        let twice = compactor
            .compact(&once.compacted, &mut ctx2)
            .expect("second pass");
        prop_assert_eq!(
            twice.compacted.size(),
            once.compacted.size(),
            "second compaction changed the program"
        );
    }
}
