//! Integration tests for MiniGrip corner semantics: subroutines, local
//! memory, divergent exits, constant memory, and timing invariants.

use warpstl::gpu::{Gpu, GpuConfig, Kernel, KernelConfig, RunOptions, SimError};
use warpstl::isa::asm;

fn run_threads(src: &str, threads: usize) -> warpstl::gpu::RunResult {
    let program = asm::assemble(src).expect("asm");
    let kernel = Kernel::new("t", program, KernelConfig::new(1, threads));
    Gpu::default()
        .run(&kernel, &RunOptions::default())
        .expect("run")
}

#[test]
fn call_and_return_execute_subroutine() {
    let r = run_threads(
        "S2R R0, SR_TID_X;\n\
         SHL R1, R0, 0x2;\n\
         MOV32I R2, 5;\n\
         CAL double;\n\
         CAL double;\n\
         STG [R1], R2;\n\
         EXIT;\n\
         double: IADD R2, R2, R2;\n\
         RET;",
        8,
    );
    for t in 0..8u64 {
        assert_eq!(r.global_mem.load_word(t * 4).unwrap(), 20);
    }
}

#[test]
fn local_memory_is_per_thread() {
    let r = run_threads(
        "S2R R0, SR_TID_X;\n\
         STL [R0], R0;\n\
         LDL R2, [R0];\n\
         SHL R1, R0, 0x2;\n\
         STG [R1], R2;\n\
         EXIT;",
        8,
    );
    // Every thread writes its own local slot at the *same* local address
    // range (addresses are per-thread), so each reads back its own tid.
    for t in 0..8u64 {
        assert_eq!(r.global_mem.load_word(t * 4).unwrap(), t as u32);
    }
}

#[test]
fn constant_memory_reads() {
    let program = asm::assemble(
        "S2R R0, SR_TID_X;\n\
         SHL R1, R0, 0x2;\n\
         LDC R2, [R1];\n\
         STG [R1], R2;\n\
         EXIT;",
    )
    .unwrap();
    let mut kernel = Kernel::new("c", program, KernelConfig::new(1, 4));
    for t in 0..4u64 {
        kernel.data.store_const_word(t * 4, 900 + t as u32).unwrap();
    }
    let r = Gpu::default().run(&kernel, &RunOptions::default()).unwrap();
    for t in 0..4u64 {
        assert_eq!(r.global_mem.load_word(t * 4).unwrap(), 900 + t as u32);
    }
}

#[test]
fn divergent_exit_lets_other_side_finish() {
    // Half the warp exits early; the other half still stores.
    let r = run_threads(
        "S2R R0, SR_TID_X;\n\
         SHL R1, R0, 0x2;\n\
         ISETP.LT P0, R0, 0x4;\n\
         SSY work;\n\
         @P0 BRA work;\n\
         EXIT;\n\
         work: SYNC;\n\
         MOV32I R2, 0x77;\n\
         STG [R1], R2;\n\
         EXIT;",
        8,
    );
    for t in 0..8u64 {
        let want = if t < 4 { 0x77 } else { 0 };
        assert_eq!(r.global_mem.load_word(t * 4).unwrap(), want, "tid {t}");
    }
}

#[test]
fn stores_to_read_only_constant_space_do_not_exist_in_isa() {
    // There is no ST-to-constant opcode; the nearest misuse is a bad RET.
    let program = asm::assemble("RET;").unwrap();
    let kernel = Kernel::new("r", program, KernelConfig::new(1, 32));
    let err = Gpu::default()
        .run(&kernel, &RunOptions::default())
        .unwrap_err();
    assert!(matches!(err, SimError::ReturnWithoutCall { .. }));
}

#[test]
fn bad_branch_target_is_reported() {
    // Assemble a branch to a numeric target beyond the program.
    let program = asm::assemble("BRA 0x30;\nEXIT;").unwrap();
    let kernel = Kernel::new("b", program, KernelConfig::new(1, 32));
    let err = Gpu::default()
        .run(&kernel, &RunOptions::default())
        .unwrap_err();
    assert!(matches!(err, SimError::BadTarget { pc: 0, .. }));
}

#[test]
fn sp_core_count_divides_duration() {
    let src = "MOV32I R1, 1;\nIADD R1, R1, R1;\nIMUL R2, R1, R1;\nEXIT;";
    let program = asm::assemble(src).unwrap();
    let mut cycles = Vec::new();
    for cores in [8, 16, 32] {
        let kernel = Kernel::new("s", program.clone(), KernelConfig::new(1, 32));
        let gpu = Gpu::new(GpuConfig::with_sp_cores(cores));
        cycles.push(gpu.run(&kernel, &RunOptions::default()).unwrap().cycles);
    }
    assert!(cycles[0] > cycles[1], "{cycles:?}");
    assert!(cycles[1] > cycles[2], "{cycles:?}");
}

#[test]
fn trace_intervals_are_disjoint_and_ordered() {
    let program = asm::assemble(
        "MOV32I R1, 3;\n\
         IADD R1, R1, 0x1;\n\
         LDG R2, [R1];\n\
         RCP R3, R2;\n\
         EXIT;",
    )
    .unwrap();
    let kernel = Kernel::new("t", program, KernelConfig::new(1, 64));
    let r = Gpu::default().run(&kernel, &RunOptions::tracing()).unwrap();
    // The SM is serial: every record starts exactly where the previous one
    // ended, and the last record ends at the total cycle count.
    let recs = r.trace.records();
    for w in recs.windows(2) {
        assert_eq!(w[0].cc_end, w[1].cc_start);
    }
    assert_eq!(recs.last().unwrap().cc_end, r.cycles);
}

#[test]
fn signatures_depend_on_every_store_path() {
    // Two kernels differing only in one immediate must give different SpT.
    let a = run_threads("MOV32I R1, 10;\nIADD R2, R1, 0x1;\nEXIT;", 4);
    let b = run_threads("MOV32I R1, 10;\nIADD R2, R1, 0x2;\nEXIT;", 4);
    assert_ne!(a.signatures, b.signatures);
}

#[test]
fn fp32_patterns_only_captured_when_requested() {
    let program = asm::assemble("MOV32I R1, 0x3f800000;\nFADD R2, R1, R1;\nEXIT;").unwrap();
    let kernel = Kernel::new("f", program, KernelConfig::new(1, 8));
    let off = Gpu::default().run(&kernel, &RunOptions::default()).unwrap();
    assert_eq!(off.patterns.fp32[0].len(), 0);
    let on = Gpu::default()
        .run(
            &kernel,
            &RunOptions {
                capture_fp32: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert_eq!(on.patterns.fp32[0].len(), 1);
    // The captured op must be FADD with the loaded operand.
    let seq = &on.patterns.fp32[0];
    let op = (seq.bit(0, 0) as u8) | ((seq.bit(0, 1) as u8) << 1);
    assert_eq!(op, warpstl::netlist::modules::fp32::OP_FADD);
}
