//! Integration tests for the extension surfaces: the FP32 unit flow and
//! the transition-delay fault model.

use warpstl::compactor::{label_instructions, reduce_ptp, Compactor};
use warpstl::fault::tdf::{tdf_simulate, TdfList};
use warpstl::fault::FaultSimConfig;
use warpstl::netlist::modules::ModuleKind;
use warpstl::programs::generators::{generate_fpu, generate_imm, FpuConfig, ImmConfig};

#[test]
fn fpu_ptp_compacts_through_the_standard_pipeline() {
    let ptp = generate_fpu(&FpuConfig {
        sb_count: 12,
        ..FpuConfig::default()
    });
    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::Fp32);
    assert_eq!(ctx.instances(), 8);
    let out = compactor.compact(&ptp, &mut ctx).expect("FPU compacts");
    assert_eq!(out.report.fault_sim_runs, 1);
    assert!(out.compacted.size() <= ptp.size());
    assert!(out.report.fc_before > 0.1, "FC {}", out.report.fc_before);
    // The compacted PTP still runs.
    let kernel = out.compacted.to_kernel().expect("kernel");
    warpstl::gpu::Gpu::default()
        .run(&kernel, &warpstl::gpu::RunOptions::default())
        .expect("compacted FPU runs");
}

#[test]
fn fp32_capture_feeds_the_module_context() {
    let ptp = generate_fpu(&FpuConfig {
        sb_count: 4,
        ..FpuConfig::default()
    });
    let compactor = Compactor::default();
    let run = compactor.trace(&ptp).expect("runs");
    let ctx = compactor.context_for(ModuleKind::Fp32);
    let streams = ctx.streams(&run.patterns);
    assert_eq!(streams.len(), 8);
    assert!(streams.iter().all(|s| !s.is_empty()));
    // Stream width matches the fp32 netlist.
    assert_eq!(streams[0].width(), ctx.netlist().inputs().width());
}

#[test]
fn tdf_compaction_reuses_the_labeling_stage() {
    // Seed/size chosen so the program carries clearly redundant SBs under
    // TDF labeling (several late SBs re-toggle already-covered pairs).
    let ptp = generate_imm(&ImmConfig {
        sb_count: 28,
        seed: 0xdead_beef,
        ..ImmConfig::default()
    });
    let compactor = Compactor::default();
    let netlist = ModuleKind::DecoderUnit.build();
    let run = compactor.trace(&ptp).expect("runs");
    let mut list = TdfList::enumerate(&netlist);
    let report = tdf_simulate(
        &netlist,
        &run.patterns.du,
        &mut list,
        &FaultSimConfig::default(),
    );
    assert!(list.coverage() > 0.05, "TDF coverage {}", list.coverage());

    let labels = label_instructions(ptp.program.len(), &run.trace, &report);
    assert!(labels.essential_count() > 0);
    let reduction = reduce_ptp(&ptp, &labels);
    assert!(reduction.removed_sbs > 0, "nothing removed under TDF");

    // The compacted program must still run and keep most TDF coverage.
    let mut compacted = ptp.clone();
    compacted.program = reduction.program;
    let comp_run = compactor.trace(&compacted).expect("compacted runs");
    let mut comp_list = TdfList::enumerate(&netlist);
    tdf_simulate(
        &netlist,
        &comp_run.patterns.du,
        &mut comp_list,
        &FaultSimConfig::default(),
    );
    assert!(
        comp_list.coverage() >= list.coverage() - 0.05,
        "TDF coverage fell {} -> {}",
        list.coverage(),
        comp_list.coverage()
    );
}

#[test]
fn tdf_and_stuck_at_label_differently() {
    // The two fault models credit different instructions: a stuck-at
    // detection needs one pattern, a transition needs a pair, so the
    // first SB's first patterns can never be TDF-essential the same way.
    let ptp = generate_imm(&ImmConfig {
        sb_count: 10,
        ..ImmConfig::default()
    });
    let compactor = Compactor::default();
    let netlist = ModuleKind::DecoderUnit.build();
    let run = compactor.trace(&ptp).expect("runs");

    let mut tdf_list = TdfList::enumerate(&netlist);
    let tdf_report = tdf_simulate(
        &netlist,
        &run.patterns.du,
        &mut tdf_list,
        &FaultSimConfig::default(),
    );
    let tdf_labels = label_instructions(ptp.program.len(), &run.trace, &tdf_report);

    let universe = warpstl::fault::FaultUniverse::enumerate(&netlist);
    let mut sa_list = warpstl::fault::FaultList::new(&universe);
    let sa_report = warpstl::fault::fault_simulate(
        &netlist,
        &run.patterns.du,
        &mut sa_list,
        &FaultSimConfig::default(),
    );
    let sa_labels = label_instructions(ptp.program.len(), &run.trace, &sa_report);

    let tdf_set: Vec<bool> = (0..ptp.size())
        .map(|pc| tdf_labels.is_essential(pc))
        .collect();
    let sa_set: Vec<bool> = (0..ptp.size())
        .map(|pc| sa_labels.is_essential(pc))
        .collect();
    assert_ne!(tdf_set, sa_set, "fault models labeled identically");
}
