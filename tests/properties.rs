//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use warpstl::fault::{
    fault_simulate, fault_simulate_reference, FaultList, FaultSimConfig, FaultUniverse,
};
use warpstl::isa::{asm, encoding, CmpOp, Instruction, Opcode, Pred, Reg};
use warpstl::netlist::{Builder, LogicSim, Netlist, PatternSeq};

// ---------------------------------------------------------------------------
// ISA properties
// ---------------------------------------------------------------------------

/// Strategy: an arbitrary *valid* instruction (guard, cmp, operands all in
/// range for the opcode's shape).
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    (
        0..Opcode::ALL.len(),
        0u8..4,
        any::<bool>(),
        any::<bool>(),
        0u8..64,
        0u8..64,
        0u8..64,
        0u8..64,
        any::<i32>(),
        0u8..4,
        0usize..6,
        0u16..u16::MAX,
    )
        .prop_map(|(opi, gp, gneg, use_pt, d, a, b, c, imm, p, cmpi, off)| {
            use warpstl::isa::Guard;
            let op = Opcode::ALL[opi];
            let guard = if use_pt {
                Guard::default()
            } else if gneg {
                Guard::negated(Pred::new(gp))
            } else {
                Guard::on(Pred::new(gp))
            };
            let mut builder = Instruction::build(op).guard(guard);
            if op.has_cmp_modifier() {
                builder = builder.cmp(CmpOp::ALL[cmpi]);
            }
            if op.writes_predicate() {
                builder = builder.pdst(Pred::new(p));
            } else if !(op.is_store() || op.is_control_flow() || op == Opcode::Nop) {
                builder = builder.dst(Reg::new(d));
            }
            use Opcode::*;
            let builder = match op {
                Nop | Exit | Ret | Bar | Sync => builder,
                Bra | Ssy | Cal => builder.src(imm & 0x7fff_ffff),
                Mov32i => builder.src(imm),
                S2r => builder.special(warpstl::isa::SpecialReg::ALL[(a % 5) as usize]),
                Mov | Not | Iabs | I2f | F2i | F2f | I2i | Rcp | Rsq | Sin | Cos | Ex2 | Lg2 => {
                    builder.src(Reg::new(a))
                }
                Iadd32i | Imul32i | And32i | Or32i | Xor32i | Fadd32i | Fmul32i => {
                    builder.src(Reg::new(a)).src(imm)
                }
                Imad | Ffma => builder.src(Reg::new(a)).src(Reg::new(b)).src(Reg::new(c)),
                Sel => builder.src(Reg::new(a)).src(Reg::new(b)).psrc(Pred::new(p)),
                Ldg | Lds | Ldc | Ldl => builder.mem(Reg::new(a), off),
                Stg | Sts | Stl => builder.mem(Reg::new(a), off).src(Reg::new(b)),
                _ => {
                    // Binary reg/imm16 forms.
                    if imm % 2 == 0 {
                        builder.src(Reg::new(a)).src(Reg::new(b))
                    } else {
                        builder.src(Reg::new(a)).src((imm % (1 << 15)).abs())
                    }
                }
            };
            builder
                .finish()
                .expect("strategy builds valid instructions")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary encoding round-trips every valid instruction.
    #[test]
    fn encoding_round_trips(instr in arb_instruction()) {
        let word = encoding::encode(&instr);
        let back = encoding::decode(word).expect("valid word decodes");
        prop_assert_eq!(back, instr);
    }

    /// Decoding never panics on arbitrary words, and every successful
    /// decode re-encodes to a word that decodes to the same instruction.
    #[test]
    fn decode_is_total_and_stable(word in any::<u64>()) {
        if let Ok(instr) = encoding::decode(word) {
            let re = encoding::encode(&instr);
            prop_assert_eq!(encoding::decode(re).expect("round"), instr);
        }
    }

    /// Disassembly re-assembles to the same program.
    #[test]
    fn asm_round_trips(instrs in proptest::collection::vec(arb_instruction(), 1..40)) {
        // Clamp targets into range so labels resolve.
        let len = instrs.len();
        let mut program = instrs;
        for i in &mut program {
            if i.opcode.has_target() {
                let t = i.target().unwrap_or(0) % (len + 1);
                i.set_target(t);
            }
        }
        let text = asm::disassemble(&program);
        let back = asm::assemble(&text).expect("disassembly is valid asm");
        prop_assert_eq!(back, program);
    }
}

// ---------------------------------------------------------------------------
// Netlist / fault-simulation properties
// ---------------------------------------------------------------------------

/// A small random combinational netlist built from a seed.
fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
    let mut b = Builder::new("random");
    let mut nets = b.input_bus("in", inputs);
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..gates {
        let r = next();
        let a = nets[(r as usize >> 8) % nets.len()];
        let c = nets[(r as usize >> 24) % nets.len()];
        let n = match r % 7 {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.not(a),
            _ => {
                let s = nets[(r as usize >> 40) % nets.len()];
                b.mux(s, a, c)
            }
        };
        nets.push(n);
    }
    let outs: Vec<_> = nets[nets.len().saturating_sub(4)..].to_vec();
    b.output_bus("out", &outs);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bit-parallel simulator agrees with itself lane by lane: packing
    /// 64 random stimuli into lanes gives the same outputs as simulating
    /// them one at a time.
    #[test]
    fn lane_parallel_equals_serial(seed in any::<u64>()) {
        let n = random_netlist(seed, 8, 40);
        let mut pats = PatternSeq::new(8);
        let mut x = seed | 3;
        for cc in 0..64u64 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            pats.push_value(cc, x & 0xff);
        }
        let batch = warpstl::netlist::simulate_seq(&n, &pats);
        // Serial reference.
        let mut sim = LogicSim::new(&n);
        for i in 0..64 {
            sim.set_input_u64("in", pats.value(i));
            sim.eval_comb();
            prop_assert_eq!(sim.output_u64("out"), batch.value(i), "pattern {}", i);
        }
    }

    /// Fault-universe weights always sum to the uncollapsed total, and the
    /// collapse never loses faults.
    #[test]
    fn collapse_preserves_total(seed in any::<u64>()) {
        let n = random_netlist(seed, 6, 30);
        let u = FaultUniverse::enumerate(&n);
        let total: u64 = (0..u.collapsed_len()).map(|i| u.class_size(i) as u64).sum();
        prop_assert_eq!(total as usize, u.total_len());
        prop_assert!(u.collapsed_len() <= u.total_len());
    }

    /// Fault dropping is sound: a second simulation of the same patterns
    /// detects nothing new, and coverage is monotone in the pattern set.
    #[test]
    fn dropping_is_sound_and_monotone(seed in any::<u64>()) {
        let n = random_netlist(seed, 6, 30);
        let u = FaultUniverse::enumerate(&n);
        let cfg = FaultSimConfig::default();
        let mut pats = PatternSeq::new(6);
        let mut x = seed | 5;
        for cc in 0..20u64 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            pats.push_value(cc, x & 0x3f);
        }
        let mut list = FaultList::new(&u);
        fault_simulate(&n, &pats, &mut list, &cfg);
        let fc1 = list.coverage();
        let r2 = fault_simulate(&n, &pats, &mut list, &cfg);
        prop_assert_eq!(r2.total_detected(), 0);
        prop_assert_eq!(list.coverage(), fc1);

        // A prefix of the patterns covers no more than the full set.
        let mut prefix = PatternSeq::new(6);
        for i in 0..10 {
            prefix.push_value(pats.cc(i), pats.value(i));
        }
        let mut list_p = FaultList::new(&u);
        fault_simulate(&n, &prefix, &mut list_p, &cfg);
        prop_assert!(list_p.coverage() <= fc1 + 1e-12);
    }

    /// Detection stamps always reference existing patterns and their ccs.
    #[test]
    fn detection_stamps_are_valid(seed in any::<u64>()) {
        let n = random_netlist(seed, 6, 25);
        let u = FaultUniverse::enumerate(&n);
        let mut pats = PatternSeq::new(6);
        let mut x = seed | 9;
        for cc in 0..16u64 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            pats.push_value(cc * 10, x & 0x3f);
        }
        let mut list = FaultList::new(&u);
        fault_simulate(&n, &pats, &mut list, &FaultSimConfig::default());
        for (_, cc, pattern, run) in list.detected() {
            prop_assert!(pattern < pats.len());
            prop_assert_eq!(cc, pats.cc(pattern));
            prop_assert_eq!(run, 1);
        }
    }

    /// The parallel, cone-pruned engine is bit-identical to the serial
    /// reference on arbitrary netlists, thread counts, and modes.
    #[test]
    fn parallel_engine_matches_reference(
        seed in any::<u64>(),
        threads in 1usize..9,
        drop_detected in any::<bool>(),
        early_exit in any::<bool>()
    ) {
        let n = random_netlist(seed, 6, 30);
        let u = FaultUniverse::enumerate(&n);
        let mut pats = PatternSeq::new(6);
        let mut x = seed | 3;
        for cc in 0..24u64 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            pats.push_value(cc * 2, x & 0x3f);
        }
        let base = FaultSimConfig { drop_detected, early_exit, threads, ..FaultSimConfig::default() };
        let mut ref_list = FaultList::new(&u);
        let ref_report = fault_simulate_reference(&n, &pats, &mut ref_list, &base);
        let mut par_list = FaultList::new(&u);
        let par_report = fault_simulate(&n, &pats, &mut par_list, &base);
        prop_assert_eq!(par_report, ref_report);
        prop_assert_eq!(par_list.to_report_text(), ref_list.to_report_text());
        prop_assert_eq!(par_list.coverage(), ref_list.coverage());
    }

    /// VCDE serialization round-trips arbitrary pattern sequences.
    #[test]
    fn vcde_round_trips(width in 1usize..100, rows in 0usize..30, seed in any::<u64>()) {
        let mut p = PatternSeq::new(width);
        let mut x = seed | 1;
        for cc in 0..rows as u64 {
            let bits: Vec<bool> = (0..width).map(|i| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x >> (i % 64)) & 1 == 1
            }).collect();
            p.push_bits(cc * 7, &bits);
        }
        let text = p.to_vcde();
        prop_assert_eq!(PatternSeq::from_vcde(&text).expect("round-trip"), p);
    }
}
