//! End-to-end STL compaction: builds a six-PTP Self-Test Library covering
//! the Decoder Unit, the SP cores and the SFUs, then compacts it exactly as
//! the paper does — per-module dropping fault lists, IMM → MEM → CNTRL and
//! TPGEN → RAND orders, reversed patterns for SFU_IMM — and prints the
//! whole-STL reduction.
//!
//! ```sh
//! cargo run --release --example compact_stl
//! ```

use warpstl::compactor::{CompactionReport, Compactor};
use warpstl::netlist::modules::ModuleKind;
use warpstl::programs::generators::{
    generate_cntrl, generate_imm, generate_mem, generate_rand_sp, generate_sfu_imm, generate_tpgen,
    CntrlConfig, ImmConfig, MemConfig, RandConfig, SfuImmConfig, TpgenConfig,
};
use warpstl::programs::Stl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small but complete STL (the paper's is ~50x larger; ratios match).
    let mut stl = Stl::new("mini-stl");
    stl.push(generate_imm(&ImmConfig {
        sb_count: 24,
        ..ImmConfig::default()
    }));
    stl.push(generate_mem(&MemConfig {
        sb_count: 24,
        ..MemConfig::default()
    }));
    stl.push(generate_cntrl(&CntrlConfig {
        regions: 6,
        loops: 1,
        threads: 128,
        ..CntrlConfig::default()
    }));
    stl.push(generate_tpgen(&TpgenConfig {
        max_patterns: 40,
        ..TpgenConfig::default()
    }));
    stl.push(generate_rand_sp(&RandConfig {
        sb_count: 24,
        ..RandConfig::default()
    }));
    stl.push(generate_sfu_imm(&SfuImmConfig {
        max_patterns: 40,
        ..SfuImmConfig::default()
    }));
    println!("{stl}");

    let mut reports: Vec<CompactionReport> = Vec::new();
    for module in [ModuleKind::DecoderUnit, ModuleKind::SpCore, ModuleKind::Sfu] {
        // The paper fault-simulates SFU_IMM's patterns in reverse order.
        let compactor = Compactor {
            reverse_patterns: module == ModuleKind::Sfu,
            ..Compactor::default()
        };
        let mut ctx = compactor.context_for(module);
        println!(
            "\n=== {} ({} faults across {} instance(s)) ===",
            module,
            ctx.total_faults(),
            ctx.instances()
        );
        let names: Vec<String> = stl.ptps_for(module).map(|p| p.name.clone()).collect();
        for name in names {
            let idx = stl
                .ptps()
                .iter()
                .position(|p| p.name == name)
                .expect("present");
            let ptp = stl.ptps()[idx].clone();
            let outcome = compactor.compact(&ptp, &mut ctx)?;
            println!(
                "{:<8} {:>6} -> {:>5} instr ({:+.2}%), {:>9} -> {:>8} ccs, ΔFC {:+.2} pp",
                outcome.report.name,
                outcome.report.original_size,
                outcome.report.compacted_size,
                -outcome.report.size_reduction_pct(),
                outcome.report.original_duration,
                outcome.report.compacted_duration,
                outcome.report.fc_diff_pct()
            );
            // Reassemble the STL with the compacted PTP (stage 5).
            stl.replace(idx, outcome.compacted);
            reports.push(outcome.report);
        }
        println!(
            "shared fault list after this module's PTPs: {:.2}% covered",
            ctx.coverage() * 100.0
        );
    }

    // Whole-STL reduction (the paper reports 80.71 % size / 64.43 %
    // duration for the selected PTPs).
    let orig_size: usize = reports.iter().map(|r| r.original_size).sum();
    let comp_size: usize = reports.iter().map(|r| r.compacted_size).sum();
    let orig_ccs: u64 = reports.iter().map(|r| r.original_duration).sum();
    let comp_ccs: u64 = reports.iter().map(|r| r.compacted_duration).sum();
    println!("\n{:-^64}", " whole STL ");
    println!(
        "size:     {orig_size} -> {comp_size} instructions ({:.2} % reduction)",
        100.0 * (1.0 - comp_size as f64 / orig_size as f64)
    );
    println!(
        "duration: {orig_ccs} -> {comp_ccs} ccs ({:.2} % reduction)",
        100.0 * (1.0 - comp_ccs as f64 / orig_ccs as f64)
    );
    Ok(())
}
