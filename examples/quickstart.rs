//! Quickstart: generate a small pseudorandom test program, compact it with
//! the single-fault-simulation method, and print the before/after numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use warpstl::compactor::Compactor;
use warpstl::netlist::modules::ModuleKind;
use warpstl::programs::generators::{generate_imm, ImmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Parallel Test Program for the GPU's Decoder Unit: 32 Small
    //    Blocks of pseudorandom immediate/register-format instructions.
    let ptp = generate_imm(&ImmConfig {
        sb_count: 32,
        ..ImmConfig::default()
    });
    println!(
        "original PTP `{}`: {} instructions, 1 block x {} threads",
        ptp.name,
        ptp.size(),
        ptp.kernel_config.threads_per_block
    );

    // 2. Compact it. The context carries the gate-level Decoder Unit model
    //    and its fault list; `compact` runs exactly one logic simulation
    //    (the traced GPU run) and one fault simulation.
    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let outcome = compactor.compact(&ptp, &mut ctx)?;
    let r = &outcome.report;

    println!("\n{:-^64}", " compaction result ");
    println!(
        "size:     {:>8} -> {:>8} instructions ({:+.2} %)",
        r.original_size,
        r.compacted_size,
        -r.size_reduction_pct()
    );
    println!(
        "duration: {:>8} -> {:>8} clock cycles ({:+.2} %)",
        r.original_duration,
        r.compacted_duration,
        -r.duration_reduction_pct()
    );
    println!(
        "coverage: {:>7.2}% -> {:>7.2}%  (diff {:+.2} pp)",
        r.fc_before * 100.0,
        r.fc_after * 100.0,
        r.fc_diff_pct()
    );
    println!(
        "SBs removed: {}/{}, essential instructions: {}",
        r.sbs_removed, r.sbs_total, r.essential_instructions
    );
    println!(
        "simulations used: {} logic + {} fault (in {:.2?})",
        r.logic_sim_runs, r.fault_sim_runs, r.compaction_time
    );

    // 3. The compacted PTP is a drop-in replacement: run it.
    let kernel = outcome.compacted.to_kernel()?;
    let run = warpstl::gpu::Gpu::default().run(&kernel, &warpstl::gpu::RunOptions::default())?;
    println!("\ncompacted PTP re-ran in {} cycles", run.cycles);
    Ok(())
}
