//! The ATPG-to-instructions flow behind the TPGEN and SFU_IMM programs:
//! run PODEM on the SP-core gate model, convert the patterns to SASS-like
//! instructions (partially — some patterns have no instruction
//! equivalent), execute them on the GPU model, and check which faults the
//! *captured* patterns actually detect.
//!
//! ```sh
//! cargo run --release --example atpg_flow
//! ```

use warpstl::atpg::convert::{convert_sp_pattern, ConversionStats};
use warpstl::atpg::{generate_patterns, AtpgConfig};
use warpstl::fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
use warpstl::gpu::{Gpu, Kernel, KernelConfig, RunOptions};
use warpstl::isa::{Instruction, Opcode};
use warpstl::netlist::modules::ModuleKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The gate-level SP core and its stuck-at fault universe.
    let netlist = ModuleKind::SpCore.build();
    let universe = FaultUniverse::enumerate(&netlist);
    println!("target module: {netlist}");
    println!(
        "fault universe: {} total, {} after equivalence collapsing",
        universe.total_len(),
        universe.collapsed_len()
    );

    // 2. ATPG (PODEM with fault dropping).
    let atpg = generate_patterns(
        &netlist,
        &AtpgConfig {
            max_patterns: 60,
            backtrack_limit: 60,
            ..AtpgConfig::default()
        },
    );
    println!(
        "\nATPG: {} patterns, {:.2}% coverage, {} untestable, {} aborted",
        atpg.patterns.len(),
        atpg.coverage() * 100.0,
        atpg.untestable,
        atpg.aborted
    );

    // 3. The parser tool: patterns -> instruction snippets.
    let mut program: Vec<Instruction> = Vec::new();
    let mut stats = ConversionStats::default();
    for (bits, care) in atpg.patterns.iter().zip(&atpg.assignments) {
        match convert_sp_pattern(bits, care) {
            Some(snippet) => {
                program.extend(snippet);
                stats.converted += 1;
            }
            None => stats.dropped += 1,
        }
    }
    program.push(Instruction::bare(Opcode::Exit));
    println!(
        "conversion: {}/{} patterns ({:.1}%), {} instructions",
        stats.converted,
        stats.converted + stats.dropped,
        stats.rate() * 100.0,
        program.len()
    );

    // 4. Execute on the GPU model with SP pattern capture.
    let kernel = Kernel::new("tpgen-demo", program, KernelConfig::new(1, 32));
    let run = Gpu::default().run(
        &kernel,
        &RunOptions {
            capture_sp: true,
            ..RunOptions::default()
        },
    )?;
    println!(
        "\nexecuted in {} ccs; SP core 0 saw {} patterns",
        run.cycles,
        run.patterns.sp[0].len()
    );

    // 5. Fault-simulate the captured per-core streams.
    let mut total_fc = 0.0;
    for (i, stream) in run.patterns.sp.iter().enumerate() {
        let mut list = FaultList::new(&universe);
        fault_simulate(&netlist, stream, &mut list, &FaultSimConfig::default());
        println!(
            "SP core {i}: {:.2}% fault coverage",
            list.coverage() * 100.0
        );
        total_fc += list.coverage();
    }
    println!(
        "mean over 8 SP cores: {:.2}%",
        total_fc / run.patterns.sp.len() as f64 * 100.0
    );
    Ok(())
}
