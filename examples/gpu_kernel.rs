//! Using the MiniGrip GPU model directly: assemble a divergent SAXPY-style
//! kernel from text, run it with the hardware monitor on, and inspect the
//! tracing report the compaction flow consumes.
//!
//! ```sh
//! cargo run --release --example gpu_kernel
//! ```

use warpstl::gpu::{Gpu, Kernel, KernelConfig, RunOptions};
use warpstl::isa::asm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y[i] = a * x[i] + y[i] for even i only (forced divergence).
    let program = asm::assemble(
        "        S2R R0, SR_TID_X;\n\
                 SHL R1, R0, 0x2;      // byte offset\n\
                 LDG R2, [R1];         // x[i]\n\
                 LDG R3, [R1+0x200];   // y[i]\n\
                 LDC R4, [R1+0x0];     // unused constant read (format demo)\n\
                 AND R5, R0, 0x1;\n\
                 ISETP.EQ P0, R5, 0x0;\n\
                 SSY join;\n\
         @!P0    BRA join;\n\
                 MOV32I R6, 0x3;       // a = 3\n\
                 IMUL R7, R6, R2;\n\
                 IADD R3, R7, R3;\n\
         join:   SYNC;\n\
                 STG [R1+0x200], R3;\n\
                 EXIT;",
    )?;

    let mut kernel = Kernel::new("saxpy-even", program, KernelConfig::new(1, 32));
    for i in 0..32u64 {
        kernel.data.store_global_word(i * 4, (i + 1) as u32)?; // x[i]
        kernel.data.store_global_word(0x200 + i * 4, 100)?; // y[i]
    }

    let gpu = Gpu::default();
    println!("GPU: {}", gpu.config);
    let run = gpu.run(&kernel, &RunOptions::capture_all())?;

    println!("\nkernel finished in {} clock cycles", run.cycles);
    for i in [0u64, 1, 2, 31] {
        let y = run.global_mem.load_word(0x200 + i * 4)?;
        println!(
            "y[{i:>2}] = {y}  (expected {})",
            if i % 2 == 0 { 3 * (i + 1) + 100 } else { 100 }
        );
    }

    // The hardware-monitor tracing report: one record per warp instruction.
    println!("\nfirst six tracing-report records (cc, pc, warp, opcode, mask):");
    for rec in run.trace.records().iter().take(6) {
        println!(
            "  cc {:>5}..{:<5} pc {:>2} warp {} {:<7} {:#010x}",
            rec.cc_start,
            rec.cc_end,
            rec.pc,
            rec.warp,
            rec.opcode.to_string(),
            rec.active_mask
        );
    }
    println!(
        "...{} records total; DU saw {} instruction-word patterns",
        run.trace.len(),
        run.patterns.du.len()
    );

    // Divergence is visible in the active masks of the guarded region.
    let divergent = run
        .trace
        .records()
        .iter()
        .filter(|r| r.active_mask != u32::MAX)
        .count();
    println!("{divergent} records executed under a partial (divergent) mask");
    Ok(())
}
